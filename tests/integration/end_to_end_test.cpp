/// Full-pipeline integration: text graph → scheduler → battery evaluation,
/// plus cross-module interactions that unit tests do not cover.
#include <gtest/gtest.h>

#include "basched/analysis/report.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/ideal.hpp"
#include "basched/battery/kibam.hpp"
#include "basched/battery/lifetime.hpp"
#include "basched/battery/peukert.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/io.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched {
namespace {

TEST(EndToEnd, ParseScheduleEvaluate) {
  const auto g = graph::parse(
      "taskgraph 3\n"
      "task prep   600 2.0 300 4.0 100 8.0\n"
      "task encode 900 3.0 450 6.0 150 12.0\n"
      "task send   400 1.0 200 2.0  70 4.0\n"
      "edge prep encode\n"
      "edge encode send\n");
  const battery::RakhmatovVrudhulaModel model(0.3);
  const auto r = core::schedule_battery_aware(g, 16.0, model);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(r.schedule.is_valid(g));
  EXPECT_LE(r.duration, 16.0 + 1e-9);
  // The chosen schedule's profile is evaluable by every battery model.
  const auto profile = r.schedule.to_profile(g);
  const battery::IdealModel ideal;
  const battery::PeukertModel peukert(1.2, 200.0);
  const battery::KibamModel kibam(0.4, 0.5, 1e5);
  EXPECT_GT(ideal.charge_lost(profile, profile.end_time()), 0.0);
  EXPECT_GT(peukert.charge_lost(profile, profile.end_time()), 0.0);
  EXPECT_GT(kibam.charge_lost(profile, profile.end_time()), 0.0);
}

TEST(EndToEnd, ScheduleRoundTripsThroughSerialization) {
  const auto g = graph::make_g2();
  const auto g2 = graph::parse(graph::serialize(g));
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  const auto a = core::schedule_battery_aware(g, 75.0, model);
  const auto b = core::schedule_battery_aware(g2, 75.0, model);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.schedule.assignment, b.schedule.assignment);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
}

TEST(EndToEnd, LifetimeOfChosenScheduleExceedsNaiveSchedule) {
  // Run the chosen schedule against a finite battery and compare the charge
  // headroom with the all-fastest schedule under the same battery.
  const auto g = graph::make_g3();
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  const auto r = core::schedule_battery_aware(g, graph::kG3ExampleDeadline, model);
  ASSERT_TRUE(r.feasible);
  const core::Schedule fast{r.schedule.sequence, core::uniform_assignment(g, 0)};
  const double sigma_ours = model.charge_lost_at_end(r.schedule.to_profile(g));
  const double sigma_fast = model.charge_lost_at_end(fast.to_profile(g));
  EXPECT_LT(sigma_ours, sigma_fast);
  // A battery sized between the two dies under all-fastest but survives ours.
  const double alpha = 0.5 * (sigma_ours + sigma_fast);
  EXPECT_FALSE(battery::find_lifetime(model, r.schedule.to_profile(g), alpha).has_value());
  EXPECT_TRUE(battery::find_lifetime(model, fast.to_profile(g), alpha).has_value());
}

TEST(EndToEnd, ReportPipelineProducesAllThreeTables) {
  const auto g3 = graph::make_g3();
  analysis::RunSpec spec;
  spec.name = "G3";
  spec.graph = &g3;
  spec.deadline = graph::kG3ExampleDeadline;
  const auto r = analysis::run_ours(spec);
  EXPECT_FALSE(analysis::format_table2(g3, r).empty());
  EXPECT_FALSE(analysis::format_table3(r, g3.num_design_points()).empty());
  const auto rows = analysis::run_comparisons(g3, "G3", {230.0}, graph::kPaperBeta);
  EXPECT_FALSE(analysis::format_table4(rows).empty());
}

TEST(EndToEnd, DifferentBatteryModelsChangeTheChosenSchedule) {
  // The scheduler optimizes whatever model it is given; a strongly nonlinear
  // battery must not produce a *worse* σ under its own model than the
  // schedule chosen for a nearly-ideal battery.
  const auto g = graph::make_g3();
  const battery::RakhmatovVrudhulaModel strong(0.15);
  const battery::RakhmatovVrudhulaModel weak(5.0);
  const auto tuned = core::schedule_battery_aware(g, 230.0, strong);
  const auto mistuned = core::schedule_battery_aware(g, 230.0, weak);
  ASSERT_TRUE(tuned.feasible && mistuned.feasible);
  const double tuned_sigma = strong.charge_lost_at_end(tuned.schedule.to_profile(g));
  const double mistuned_sigma = strong.charge_lost_at_end(mistuned.schedule.to_profile(g));
  EXPECT_LE(tuned_sigma, mistuned_sigma * 1.02);
}

}  // namespace
}  // namespace basched
