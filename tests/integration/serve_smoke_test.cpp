/// End-to-end smoke of `baschedule serve`: forks the real binary as a
/// daemon on an ephemeral unix socket and proves the serving contract —
/// responses byte-identical to the CLI, warm-catalog sharing across
/// same-catalog requests, and a clean SIGTERM drain.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "basched/serve/json.hpp"

#ifndef BASCHEDULE_BIN
#error "BASCHEDULE_BIN must point at the baschedule executable"
#endif

namespace {

using basched::serve::json::Object;
using basched::serve::json::Value;
namespace json = basched::serve::json;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int run_cli(const std::string& args) {
  const std::string cmd = std::string(BASCHEDULE_BIN) + " " + args + " 2>/dev/null";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// One JSON-lines round trip over a connected unix-socket fd.
class Conn {
 public:
  explicit Conn(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    timeval tv{60, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~Conn() {
    if (fd_ >= 0) ::close(fd_);
  }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  Object rpc(const std::string& verb, Object params) {
    Object frame;
    frame["verb"] = verb;
    frame["params"] = Value(std::move(params));
    const std::string line = json::dump(Value(std::move(frame))) + "\n";
    EXPECT_EQ(::send(fd_, line.data(), line.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(line.size()));
    std::string response;
    char c = 0;
    while (::recv(fd_, &c, 1, 0) == 1 && c != '\n') response.push_back(c);
    return json::parse(response).as_object();
  }

 private:
  int fd_ = -1;
};

class ServeSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    char dir_template[] = "/tmp/basched_smoke_XXXXXX";
    ASSERT_NE(::mkdtemp(dir_template), nullptr);
    dir_ = dir_template;
    socket_path_ = dir_ + "/serve.sock";

    // Fixture inputs come from the CLI itself, so the comparison below is
    // CLI-vs-daemon on identical artifacts.
    ASSERT_EQ(run_cli("generate --family sp --tasks 6 --seed 3 --out " + dir_ + "/g.txt"), 0);
    graph_ = read_file(dir_ + "/g.txt");

    daemon_pid_ = ::fork();
    ASSERT_GE(daemon_pid_, 0);
    if (daemon_pid_ == 0) {
      ::execl(BASCHEDULE_BIN, "baschedule", "serve", "--socket", socket_path_.c_str(),
              static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    // Wait for the daemon to bind (the socket file appears).
    for (int i = 0; i < 600; ++i) {
      if (::access(socket_path_.c_str(), F_OK) == 0) return;
      ::usleep(50'000);
    }
    FAIL() << "daemon never bound " << socket_path_;
  }

  void TearDown() override {
    if (daemon_pid_ > 0) {
      ::kill(daemon_pid_, SIGKILL);  // no-op if the test already reaped it
      int status = 0;
      ::waitpid(daemon_pid_, &status, 0);
    }
  }

  /// SIGTERM must drain gracefully: exit code 0, socket file unlinked.
  void expect_clean_sigterm_exit() {
    ASSERT_EQ(::kill(daemon_pid_, SIGTERM), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(daemon_pid_, &status, 0), daemon_pid_);
    daemon_pid_ = -1;
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    EXPECT_NE(::access(socket_path_.c_str(), F_OK), 0);  // socket unlinked
  }

  std::string dir_;
  std::string socket_path_;
  std::string graph_;
  pid_t daemon_pid_ = -1;
};

TEST_F(ServeSmoke, ScheduleAndSweepAreByteIdenticalToCli) {
  // CLI reference outputs (--jobs 1, the daemon's per-request configuration).
  ASSERT_EQ(run_cli("schedule --graph " + dir_ + "/g.txt --deadline 100 --out " + dir_ +
                    "/sched.txt"),
            0);
  ASSERT_EQ(run_cli("sweep --graph " + dir_ + "/g.txt --from 20 --to 60 --steps 4 --jobs 1 "
                    "--out " + dir_ + "/sweep.csv"),
            0);

  Conn conn(socket_path_);

  Object sparams;
  sparams["graph"] = graph_;
  sparams["deadline"] = 100.0;
  const Object sresp = conn.rpc("schedule", std::move(sparams));
  ASSERT_TRUE(sresp.at("ok").as_bool()) << json::dump(Value(sresp));
  const Object& sresult = sresp.at("result").as_object();
  ASSERT_TRUE(sresult.at("feasible").as_bool());
  EXPECT_EQ(sresult.at("schedule").as_string(), read_file(dir_ + "/sched.txt"));

  Object wparams;
  wparams["graph"] = graph_;
  wparams["from"] = 20.0;
  wparams["to"] = 60.0;
  wparams["steps"] = 4;
  const Object wresp = conn.rpc("sweep", std::move(wparams));
  ASSERT_TRUE(wresp.at("ok").as_bool()) << json::dump(Value(wresp));
  EXPECT_EQ(wresp.at("result").as_object().at("csv").as_string(),
            read_file(dir_ + "/sweep.csv"));

  expect_clean_sigterm_exit();
}

TEST_F(ServeSmoke, SecondSameCatalogRequestSharesTheWarmCache) {
  Conn conn(socket_path_);
  Object params;
  params["graph"] = graph_;
  params["deadline"] = 100.0;

  const Object first = conn.rpc("schedule", Object(params)).at("result").as_object();
  const Object second = conn.rpc("schedule", Object(params)).at("result").as_object();
  ASSERT_TRUE(first.at("feasible").as_bool());

  // Identical payload, strictly cheaper: the first request built the
  // catalog's master decay cache on top of the same search work.
  EXPECT_EQ(second.at("schedule").as_string(), first.at("schedule").as_string());
  EXPECT_LT(second.at("exp_evals").as_number(), first.at("exp_evals").as_number());

  expect_clean_sigterm_exit();
}

TEST_F(ServeSmoke, SigtermWithIdleConnectionStillDrains) {
  Conn conn(socket_path_);  // an open, idle connection must not block drain
  Object params;
  params["graph"] = graph_;
  params["deadline"] = 100.0;
  ASSERT_TRUE(conn.rpc("schedule", std::move(params)).at("ok").as_bool());
  expect_clean_sigterm_exit();
}

}  // namespace
