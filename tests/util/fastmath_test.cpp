/// Accuracy and dispatch suite for util::fastmath: the batched exp kernel
/// must agree with std::exp to 1e-12 relative across the whole argument
/// range the RV series produces — including the deep underflow/denormal
/// tail — the scalar kernel must be bit-identical to libm, the dispatch
/// switch must actually switch, and DecayRowCache rows must equal direct
/// computation while serving warm keys without new exp evaluations.
#include "basched/util/fastmath.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "basched/util/rng.hpp"

namespace basched::util::fastmath {
namespace {

/// Restores the active kernel on scope exit so tests cannot leak state.
class KernelGuard {
 public:
  KernelGuard() : saved_(exp_kernel()) {}
  ~KernelGuard() { set_exp_kernel(saved_); }

 private:
  ExpKernel saved_;
};

/// The argument range Eq. 1's series produces: exponents -β²m²·Δt with
/// β² ≈ 0.0745, m up to 10 and time deltas from fractions of a minute to
/// whole missions — i.e. (-inf, 0] in practice, with the deep tail
/// underflowing. Positive arguments are included for kernel completeness.
std::vector<double> series_arguments() {
  std::vector<double> xs;
  // Dense log-spaced sweep of magnitudes from 1e-12 up to the underflow
  // wall and beyond (exp(-746) == 0 in double).
  for (double mag = 1e-12; mag < 800.0; mag *= 1.07) xs.push_back(-mag);
  for (double mag = 1e-6; mag < 700.0; mag *= 1.31) xs.push_back(mag);
  // The denormal band: exp(x) is denormal for x in about (-745.14, -708.4).
  for (double x = -708.0; x > -746.0; x -= 0.173) xs.push_back(x);
  // Exact boundaries and specials.
  xs.insert(xs.end(), {0.0, -0.0, -706.0, -707.0, -708.0, 706.0, -745.133, -746.0, -1000.0,
                       1000.0, std::numeric_limits<double>::infinity(),
                       -std::numeric_limits<double>::infinity()});
  // Random draws shaped like β²m²·Δt for the paper's catalog durations.
  util::Rng rng(99);
  for (int i = 0; i < 4096; ++i) {
    const double m = 1.0 + static_cast<double>(rng.pick_index(10));
    const double dt = 0.05 + 60.0 * rng.next_double();
    xs.push_back(-0.273 * 0.273 * m * m * dt);
  }
  return xs;
}

TEST(Fastmath, BatchedKernelMatchesStdExpAcrossSeriesRange) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Batched);
  const std::vector<double> args = series_arguments();
  std::vector<double> got = args;
  batch_exp(got);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const double want = std::exp(args[i]);
    if (std::isnan(want) || std::isinf(want)) {
      EXPECT_EQ(std::isnan(got[i]), std::isnan(want)) << "x=" << args[i];
      if (std::isinf(want)) {
        EXPECT_EQ(got[i], want) << "x=" << args[i];
      }
      continue;
    }
    // 1e-12 relative everywhere; the underflow/denormal tail goes through
    // the std::exp fixup and must match bit-for-bit.
    const double tol = 1e-12 * std::abs(want);
    EXPECT_NEAR(got[i], want, tol) << "x=" << args[i];
    if (args[i] < -706.0) {
      EXPECT_EQ(got[i], want) << "tail must be exactly libm, x=" << args[i];
    }
  }
}

TEST(Fastmath, BatchedKernelIsMuchTighterThanContractInCore) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Batched);
  // Inside [-706, 0] — the region served by the polynomial — the error
  // budget the evaluator actually consumes must be ~1e-15, far inside the
  // repo-wide 1e-12 pricing tolerance.
  double worst = 0.0;
  for (double x = -700.0; x < 0.0; x += 0.0917) {
    double v = x;
    batch_exp(std::span<double>(&v, 1));
    const double want = std::exp(x);
    worst = std::max(worst, std::abs(v - want) / want);
  }
  EXPECT_LT(worst, 1e-13);
}

TEST(Fastmath, ScalarKernelIsBitIdenticalToStdExp) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Scalar);
  EXPECT_STREQ(exp_kernel_name(), "scalar");
  const std::vector<double> args = series_arguments();
  std::vector<double> got = args;
  batch_exp(got);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const double want = std::exp(args[i]);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got[i]));
      continue;
    }
    EXPECT_EQ(got[i], want) << "x=" << args[i];
  }
}

TEST(Fastmath, DispatchSwitchSwitches) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Batched);
  EXPECT_EQ(exp_kernel(), ExpKernel::Batched);
  EXPECT_STREQ(exp_kernel_name(), "batched");
  set_exp_kernel(ExpKernel::Scalar);
  EXPECT_EQ(exp_kernel(), ExpKernel::Scalar);
  EXPECT_STREQ(exp_kernel_name(), "scalar");
}

TEST(Fastmath, ExpEvaluationsCountsPerElement) {
  double xs[7] = {-1, -2, -3, -4, -5, -6, -7};
  const std::uint64_t before = exp_evaluations();
  batch_exp(std::span<double>(xs, 7));
  EXPECT_EQ(exp_evaluations() - before, 7u);
  batch_exp(std::span<double>(xs, 0));  // empty span counts nothing
  EXPECT_EQ(exp_evaluations() - before, 7u);
}

TEST(Fastmath, DecayRowCacheRowsEqualDirectComputation) {
  const double beta_sq = 0.273 * 0.273;
  std::vector<double> coeffs;
  for (int m = 1; m <= 10; ++m) coeffs.push_back(beta_sq * m * m);
  DecayRowCache cache(coeffs, 64);
  std::vector<double> scratch(coeffs.size());
  std::vector<double> direct(coeffs.size());
  util::Rng rng(3);
  for (int rep = 0; rep < 200; ++rep) {
    const double key = 0.01 + 30.0 * rng.next_double();
    const double* row = cache.row(key, scratch.data());
    cache.compute(key, direct.data());
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      EXPECT_EQ(row[i], direct[i]) << "key=" << key << " i=" << i;
      EXPECT_EQ(direct[i], [&] {
        double v = -coeffs[i] * key;
        batch_exp(std::span<double>(&v, 1));
        return v;
      }());
    }
  }
}

TEST(Fastmath, DecayRowCacheServesWarmKeysWithoutExpEvaluations) {
  std::vector<double> coeffs{0.1, 0.2, 0.3};
  DecayRowCache cache(coeffs, 16);
  std::vector<double> scratch(coeffs.size());
  (void)cache.row(2.5, scratch.data());
  EXPECT_EQ(cache.misses(), 1u);
  const std::uint64_t before = exp_evaluations();
  for (int i = 0; i < 10; ++i) (void)cache.row(2.5, scratch.data());
  EXPECT_EQ(exp_evaluations(), before);  // all hits, zero exps
  EXPECT_EQ(cache.hits(), 10u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(Fastmath, BatchExpBlockMatchesPerRowBatchExpBitwise) {
  KernelGuard guard;
  for (const ExpKernel kernel : {ExpKernel::Batched, ExpKernel::Scalar}) {
    set_exp_kernel(kernel);
    util::Rng rng(17);
    for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
      for (const std::size_t terms : {std::size_t{1}, std::size_t{5}, std::size_t{10}}) {
        std::vector<double> block(k * terms);
        for (auto& x : block) x = -60.0 * rng.next_double();
        block[0] = -745.5;  // one denormal-tail lane through the fixup
        std::vector<double> rows = block;
        batch_exp_block(block.data(), k, terms);
        for (std::size_t j = 0; j < k; ++j) {
          batch_exp(std::span<double>(rows.data() + j * terms, terms));
        }
        for (std::size_t i = 0; i < block.size(); ++i) {
          EXPECT_EQ(block[i], rows[i])
              << exp_kernel_name() << " k=" << k << " terms=" << terms << " i=" << i;
        }
      }
    }
  }
}

TEST(Fastmath, BatchExpBlockCountsEveryLane) {
  double block[12];
  for (double& x : block) x = -1.5;
  const std::uint64_t before = exp_evaluations();
  batch_exp_block(block, 3, 4);
  EXPECT_EQ(exp_evaluations() - before, 12u);
  batch_exp_block(block, 0, 4);  // empty block counts nothing
  batch_exp_block(block, 3, 0);
  EXPECT_EQ(exp_evaluations() - before, 12u);
}

TEST(Fastmath, IsaDispatchRoundTripsAndRejectsUnknownArms) {
  const std::string startup = exp_isa_name();
  EXPECT_FALSE(set_exp_isa("mmx"));
  EXPECT_FALSE(set_exp_isa(""));
  EXPECT_STREQ(exp_isa_name(), startup.c_str());  // failed sets leave it alone

  ASSERT_TRUE(set_exp_isa("portable"));
  EXPECT_STREQ(exp_isa_name(), "portable");
  ASSERT_TRUE(set_exp_isa("auto"));
  EXPECT_STREQ(exp_isa_name(), startup.c_str());
}

TEST(Fastmath, IsaArmsAgreeBitwiseWhereSupported) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Batched);
  const std::string startup = exp_isa_name();
  const std::vector<double> args = series_arguments();

  ASSERT_TRUE(set_exp_isa("portable"));
  std::vector<double> portable = args;
  batch_exp(portable);

  // Every arm the host supports must agree with the portable arm to ≤1 ulp
  // (same polynomial, same fixup; only the vector width differs) — and SIMD
  // siblings (avx2 vs avx512) must agree with each other bit-for-bit.
  for (const char* arm : {"avx2", "avx512", "neon"}) {
    if (!set_exp_isa(arm)) continue;  // host lacks this arm
    std::vector<double> got = args;
    batch_exp(got);
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (std::isnan(portable[i])) {
        EXPECT_TRUE(std::isnan(got[i])) << arm << " x=" << args[i];
        continue;
      }
      if (std::isinf(portable[i])) {
        EXPECT_EQ(got[i], portable[i]) << arm << " x=" << args[i];
        continue;
      }
      EXPECT_NEAR(got[i], portable[i],
                  std::abs(portable[i]) * std::numeric_limits<double>::epsilon())
          << arm << " x=" << args[i];
    }
  }
  ASSERT_TRUE(set_exp_isa("auto"));
  EXPECT_STREQ(exp_isa_name(), startup.c_str());
}

TEST(Fastmath, IsaSwitchDoesNotAffectScalarKernel) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Scalar);
  if (!set_exp_isa("portable")) GTEST_SKIP();
  double x = -3.25;
  batch_exp(std::span<double>(&x, 1));
  EXPECT_EQ(x, std::exp(-3.25));  // scalar kernel is libm regardless of arm
  ASSERT_TRUE(set_exp_isa("auto"));
}

TEST(Fastmath, RowsBlockMatchesPerKeyRowsBitwise) {
  const double beta_sq = 0.273 * 0.273;
  std::vector<double> coeffs;
  for (int m = 1; m <= 10; ++m) coeffs.push_back(beta_sq * m * m);
  const std::size_t terms = coeffs.size();
  util::Rng rng(5);
  // Fresh caches so the block path sees the same cold/warm state as the
  // per-key reference.
  DecayRowCache block_cache(coeffs, 64);
  DecayRowCache row_cache(coeffs, 64);
  std::vector<double> scratch(terms);
  for (int rep = 0; rep < 30; ++rep) {
    std::vector<double> keys;
    for (int j = 0; j < 6; ++j) keys.push_back(0.01 + 30.0 * rng.next_double());
    keys.push_back(keys[1]);  // duplicate cold key inside one block
    keys.push_back(0.0);      // the uncacheable +0.0 key
    std::vector<double> out(keys.size() * terms);
    (void)block_cache.rows_block(keys, out.data());
    for (std::size_t j = 0; j < keys.size(); ++j) {
      const double* row = row_cache.row(keys[j], scratch.data());
      for (std::size_t i = 0; i < terms; ++i) {
        EXPECT_EQ(out[j * terms + i], row[i]) << "rep=" << rep << " j=" << j << " i=" << i;
      }
    }
  }
  EXPECT_EQ(block_cache.entries(), row_cache.entries());
}

TEST(Fastmath, RowsBlockReturnsUniqueColdCountAndDedupes) {
  std::vector<double> coeffs{0.1, 0.2, 0.3};
  DecayRowCache cache(coeffs, 16);
  const std::size_t terms = coeffs.size();

  // 5 lanes, 2 unique cold keys (2.0 appears three times), one +0.0 lane.
  const std::vector<double> keys{2.0, 3.0, 2.0, 0.0, 2.0};
  std::vector<double> out(keys.size() * terms);
  const std::uint64_t before = exp_evaluations();
  EXPECT_EQ(cache.rows_block(keys, out.data()), 2u);
  // Deduplication: exactly unique_cold·terms exp lanes, repeats are copies.
  EXPECT_EQ(exp_evaluations() - before, 2u * terms);
  for (std::size_t i = 0; i < terms; ++i) {
    EXPECT_EQ(out[3 * terms + i], 1.0);               // +0.0 row is exact ones
    EXPECT_EQ(out[0 * terms + i], out[2 * terms + i]);  // duplicate lanes match
    EXPECT_EQ(out[0 * terms + i], out[4 * terms + i]);
  }

  // Re-gathering the same block is fully warm: zero cold keys, zero exps.
  const std::uint64_t warm_before = exp_evaluations();
  EXPECT_EQ(cache.rows_block(keys, out.data()), 0u);
  EXPECT_EQ(exp_evaluations(), warm_before);
  EXPECT_EQ(cache.entries(), 2u);

  // Empty block is a no-op.
  EXPECT_EQ(cache.rows_block(std::span<const double>(), out.data()), 0u);
}

TEST(Fastmath, DecayRowCacheCapsInsertionsButStaysCorrect) {
  std::vector<double> coeffs{1.0, 2.0};
  DecayRowCache cache(coeffs, 4);  // tiny cap
  std::vector<double> scratch(coeffs.size());
  std::vector<double> direct(coeffs.size());
  for (int k = 1; k <= 20; ++k) {
    const double key = 0.5 * k;
    const double* row = cache.row(key, scratch.data());
    cache.compute(key, direct.data());
    EXPECT_EQ(row[0], direct[0]);
    EXPECT_EQ(row[1], direct[1]);
  }
  EXPECT_LE(cache.entries(), 4u);
  // Key 0.0 shares the empty-slot bit pattern and must be answered (from
  // scratch) rather than cached.
  const double* row = cache.row(0.0, scratch.data());
  EXPECT_EQ(row, scratch.data());
  EXPECT_EQ(row[0], 1.0);
  EXPECT_EQ(row[1], 1.0);
}

}  // namespace
}  // namespace basched::util::fastmath
