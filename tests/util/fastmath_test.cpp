/// Accuracy and dispatch suite for util::fastmath: the batched exp kernel
/// must agree with std::exp to 1e-12 relative across the whole argument
/// range the RV series produces — including the deep underflow/denormal
/// tail — the scalar kernel must be bit-identical to libm, the dispatch
/// switch must actually switch, and DecayRowCache rows must equal direct
/// computation while serving warm keys without new exp evaluations.
#include "basched/util/fastmath.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "basched/util/rng.hpp"

namespace basched::util::fastmath {
namespace {

/// Restores the active kernel on scope exit so tests cannot leak state.
class KernelGuard {
 public:
  KernelGuard() : saved_(exp_kernel()) {}
  ~KernelGuard() { set_exp_kernel(saved_); }

 private:
  ExpKernel saved_;
};

/// The argument range Eq. 1's series produces: exponents -β²m²·Δt with
/// β² ≈ 0.0745, m up to 10 and time deltas from fractions of a minute to
/// whole missions — i.e. (-inf, 0] in practice, with the deep tail
/// underflowing. Positive arguments are included for kernel completeness.
std::vector<double> series_arguments() {
  std::vector<double> xs;
  // Dense log-spaced sweep of magnitudes from 1e-12 up to the underflow
  // wall and beyond (exp(-746) == 0 in double).
  for (double mag = 1e-12; mag < 800.0; mag *= 1.07) xs.push_back(-mag);
  for (double mag = 1e-6; mag < 700.0; mag *= 1.31) xs.push_back(mag);
  // The denormal band: exp(x) is denormal for x in about (-745.14, -708.4).
  for (double x = -708.0; x > -746.0; x -= 0.173) xs.push_back(x);
  // Exact boundaries and specials.
  xs.insert(xs.end(), {0.0, -0.0, -706.0, -707.0, -708.0, 706.0, -745.133, -746.0, -1000.0,
                       1000.0, std::numeric_limits<double>::infinity(),
                       -std::numeric_limits<double>::infinity()});
  // Random draws shaped like β²m²·Δt for the paper's catalog durations.
  util::Rng rng(99);
  for (int i = 0; i < 4096; ++i) {
    const double m = 1.0 + static_cast<double>(rng.pick_index(10));
    const double dt = 0.05 + 60.0 * rng.next_double();
    xs.push_back(-0.273 * 0.273 * m * m * dt);
  }
  return xs;
}

TEST(Fastmath, BatchedKernelMatchesStdExpAcrossSeriesRange) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Batched);
  const std::vector<double> args = series_arguments();
  std::vector<double> got = args;
  batch_exp(got);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const double want = std::exp(args[i]);
    if (std::isnan(want) || std::isinf(want)) {
      EXPECT_EQ(std::isnan(got[i]), std::isnan(want)) << "x=" << args[i];
      if (std::isinf(want)) {
        EXPECT_EQ(got[i], want) << "x=" << args[i];
      }
      continue;
    }
    // 1e-12 relative everywhere; the underflow/denormal tail goes through
    // the std::exp fixup and must match bit-for-bit.
    const double tol = 1e-12 * std::abs(want);
    EXPECT_NEAR(got[i], want, tol) << "x=" << args[i];
    if (args[i] < -706.0) {
      EXPECT_EQ(got[i], want) << "tail must be exactly libm, x=" << args[i];
    }
  }
}

TEST(Fastmath, BatchedKernelIsMuchTighterThanContractInCore) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Batched);
  // Inside [-706, 0] — the region served by the polynomial — the error
  // budget the evaluator actually consumes must be ~1e-15, far inside the
  // repo-wide 1e-12 pricing tolerance.
  double worst = 0.0;
  for (double x = -700.0; x < 0.0; x += 0.0917) {
    double v = x;
    batch_exp(std::span<double>(&v, 1));
    const double want = std::exp(x);
    worst = std::max(worst, std::abs(v - want) / want);
  }
  EXPECT_LT(worst, 1e-13);
}

TEST(Fastmath, ScalarKernelIsBitIdenticalToStdExp) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Scalar);
  EXPECT_STREQ(exp_kernel_name(), "scalar");
  const std::vector<double> args = series_arguments();
  std::vector<double> got = args;
  batch_exp(got);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const double want = std::exp(args[i]);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got[i]));
      continue;
    }
    EXPECT_EQ(got[i], want) << "x=" << args[i];
  }
}

TEST(Fastmath, DispatchSwitchSwitches) {
  KernelGuard guard;
  set_exp_kernel(ExpKernel::Batched);
  EXPECT_EQ(exp_kernel(), ExpKernel::Batched);
  EXPECT_STREQ(exp_kernel_name(), "batched");
  set_exp_kernel(ExpKernel::Scalar);
  EXPECT_EQ(exp_kernel(), ExpKernel::Scalar);
  EXPECT_STREQ(exp_kernel_name(), "scalar");
}

TEST(Fastmath, ExpEvaluationsCountsPerElement) {
  double xs[7] = {-1, -2, -3, -4, -5, -6, -7};
  const std::uint64_t before = exp_evaluations();
  batch_exp(std::span<double>(xs, 7));
  EXPECT_EQ(exp_evaluations() - before, 7u);
  batch_exp(std::span<double>(xs, 0));  // empty span counts nothing
  EXPECT_EQ(exp_evaluations() - before, 7u);
}

TEST(Fastmath, DecayRowCacheRowsEqualDirectComputation) {
  const double beta_sq = 0.273 * 0.273;
  std::vector<double> coeffs;
  for (int m = 1; m <= 10; ++m) coeffs.push_back(beta_sq * m * m);
  DecayRowCache cache(coeffs, 64);
  std::vector<double> scratch(coeffs.size());
  std::vector<double> direct(coeffs.size());
  util::Rng rng(3);
  for (int rep = 0; rep < 200; ++rep) {
    const double key = 0.01 + 30.0 * rng.next_double();
    const double* row = cache.row(key, scratch.data());
    cache.compute(key, direct.data());
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      EXPECT_EQ(row[i], direct[i]) << "key=" << key << " i=" << i;
      EXPECT_EQ(direct[i], [&] {
        double v = -coeffs[i] * key;
        batch_exp(std::span<double>(&v, 1));
        return v;
      }());
    }
  }
}

TEST(Fastmath, DecayRowCacheServesWarmKeysWithoutExpEvaluations) {
  std::vector<double> coeffs{0.1, 0.2, 0.3};
  DecayRowCache cache(coeffs, 16);
  std::vector<double> scratch(coeffs.size());
  (void)cache.row(2.5, scratch.data());
  EXPECT_EQ(cache.misses(), 1u);
  const std::uint64_t before = exp_evaluations();
  for (int i = 0; i < 10; ++i) (void)cache.row(2.5, scratch.data());
  EXPECT_EQ(exp_evaluations(), before);  // all hits, zero exps
  EXPECT_EQ(cache.hits(), 10u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(Fastmath, DecayRowCacheCapsInsertionsButStaysCorrect) {
  std::vector<double> coeffs{1.0, 2.0};
  DecayRowCache cache(coeffs, 4);  // tiny cap
  std::vector<double> scratch(coeffs.size());
  std::vector<double> direct(coeffs.size());
  for (int k = 1; k <= 20; ++k) {
    const double key = 0.5 * k;
    const double* row = cache.row(key, scratch.data());
    cache.compute(key, direct.data());
    EXPECT_EQ(row[0], direct[0]);
    EXPECT_EQ(row[1], direct[1]);
  }
  EXPECT_LE(cache.entries(), 4u);
  // Key 0.0 shares the empty-slot bit pattern and must be answered (from
  // scratch) rather than cached.
  const double* row = cache.row(0.0, scratch.data());
  EXPECT_EQ(row, scratch.data());
  EXPECT_EQ(row[0], 1.0);
  EXPECT_EQ(row[1], 1.0);
}

}  // namespace
}  // namespace basched::util::fastmath
