#include "basched/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace basched::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntHitsAllValues) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleSingleAndEmptyAreNoops) {
  Rng rng(31);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, PickIndexInRange) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.pick_index(7), 7u);
}

TEST(Rng, DeriveSeedDecorrelates) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(5, 3), derive_seed(5, 3));
}

}  // namespace
}  // namespace basched::util
