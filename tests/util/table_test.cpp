#include "basched/util/table.hpp"

#include <gtest/gtest.h>

namespace basched::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"A", "B"});
  t.add_row({"1", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| A |"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, RowCountExcludesSeparators) {
  Table t({"X"});
  t.add_row({"a"});
  t.add_separator();
  t.add_row({"b"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"A", "B", "C"});
  t.add_row({"1"});
  const std::string s = t.str();
  // Every line must have the same length in a well-formed table.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    EXPECT_EQ(nl - pos, first_len);
    pos = nl + 1;
  }
}

TEST(Table, LongRowsExtendColumns) {
  Table t({"A"});
  t.add_row({"1", "2", "3"});
  const std::string s = t.str();
  EXPECT_NE(s.find("3"), std::string::npos);
}

TEST(Table, LeftAlignment) {
  Table t({"Name", "Val"});
  t.set_align(0, Align::Left);
  t.add_row({"x", "1234"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| x    |"), std::string::npos);
}

TEST(Table, RightAlignmentIsDefault) {
  Table t({"Name", "Val"});
  t.add_row({"x", "1"});
  const std::string s = t.str();
  EXPECT_NE(s.find("|    x |"), std::string::npos);
}

TEST(Table, EmptyRowBecomesDataRowNotSeparator) {
  Table t({"A"});
  t.add_row({});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(16353.04, 1), "16353.0");
  EXPECT_EQ(fmt_double(2.5, 0), "2");  // round-to-even at .5
  EXPECT_EQ(fmt_double(1.005, 2), fmt_double(1.005, 2));  // deterministic
  EXPECT_EQ(fmt_double(-3.14159, 3), "-3.142");
}

}  // namespace
}  // namespace basched::util
