#include "basched/util/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace basched::util {
namespace {

Args make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> v(tokens);
  return Args(static_cast<int>(v.size()), v.data());
}

TEST(Args, CommandAndOptions) {
  const auto a = make({"schedule", "--graph", "g.txt", "--deadline", "75"});
  EXPECT_EQ(a.command(), "schedule");
  EXPECT_EQ(a.get_string("graph"), "g.txt");
  EXPECT_DOUBLE_EQ(a.get_double("deadline"), 75.0);
}

TEST(Args, EmptyCommandLine) {
  const auto a = make({});
  EXPECT_EQ(a.command(), "");
}

TEST(Args, BooleanFlag) {
  const auto a = make({"run", "--verbose"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_FALSE(a.has("quiet"));
}

TEST(Args, FlagFollowedByOption) {
  const auto a = make({"run", "--verbose", "--graph", "g.txt"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get_string("graph"), "g.txt");
}

TEST(Args, MissingRequiredThrows) {
  const auto a = make({"run"});
  EXPECT_THROW((void)a.get_string("graph"), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("deadline"), std::invalid_argument);
  EXPECT_THROW((void)a.get_int("seed"), std::invalid_argument);
}

TEST(Args, Fallbacks) {
  const auto a = make({"run"});
  EXPECT_EQ(a.get_string("out", "-"), "-");
  EXPECT_DOUBLE_EQ(a.get_double("beta", 0.273), 0.273);
  EXPECT_EQ(a.get_int("seed", 42), 42);
}

TEST(Args, NumericValidation) {
  const auto a = make({"run", "--deadline", "abc", "--seed", "1.5"});
  EXPECT_THROW((void)a.get_double("deadline"), std::invalid_argument);
  EXPECT_THROW((void)a.get_int("seed"), std::invalid_argument);
}

TEST(Args, StrayPositionalThrows) {
  EXPECT_THROW(make({"run", "oops"}), std::invalid_argument);
}

TEST(Args, EmptyOptionNameThrows) {
  EXPECT_THROW(make({"run", "--"}), std::invalid_argument);
}

TEST(Args, UnusedKeysTracked) {
  const auto a = make({"run", "--graph", "g", "--typo", "x"});
  (void)a.get_string("graph");
  const auto unused = a.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, NegativeNumbersAsValues) {
  // "-5" does not start with "--" so it parses as a value.
  const auto a = make({"run", "--offset", "-5"});
  EXPECT_EQ(a.get_int("offset"), -5);
}

TEST(Args, OptionAtEndOfLineIsFlag) {
  // A trailing "--key" with no value parses as a boolean flag whose string
  // value is empty; reading it as a number fails loudly.
  const auto a = make({"run", "--graph"});
  EXPECT_TRUE(a.has("graph"));
  EXPECT_EQ(a.get_string("graph"), "");
  EXPECT_THROW((void)a.get_double("graph"), std::invalid_argument);
  EXPECT_THROW((void)a.get_int("graph"), std::invalid_argument);
}

TEST(Args, MissingValueBeforeNextOption) {
  // "--graph --deadline 5": graph gets no value (the next token is an
  // option), so it degrades to a flag rather than swallowing "--deadline".
  const auto a = make({"run", "--graph", "--deadline", "5"});
  EXPECT_TRUE(a.has("graph"));
  EXPECT_EQ(a.get_string("graph"), "");
  EXPECT_DOUBLE_EQ(a.get_double("deadline"), 5.0);
}

TEST(Args, TrailingGarbageNumbersThrow) {
  const auto a = make({"run", "--deadline", "5x", "--seed", "10kg"});
  EXPECT_THROW((void)a.get_double("deadline"), std::invalid_argument);
  EXPECT_THROW((void)a.get_int("seed"), std::invalid_argument);
}

TEST(Args, FallbackDoesNotMaskBadNumeric) {
  // A supplied-but-malformed value must throw even through the defaulted
  // getter — the fallback is only for absent keys.
  const auto a = make({"run", "--beta", "abc", "--seed", "x"});
  EXPECT_THROW((void)a.get_double("beta", 0.273), std::invalid_argument);
  EXPECT_THROW((void)a.get_int("seed", 1), std::invalid_argument);
}

TEST(Args, DuplicateKeyLastWins) {
  const auto a = make({"run", "--seed", "1", "--seed", "2"});
  EXPECT_EQ(a.get_int("seed"), 2);
}

TEST(Args, ScientificNotationDouble) {
  const auto a = make({"run", "--deadline", "1e2"});
  EXPECT_DOUBLE_EQ(a.get_double("deadline"), 100.0);
}

TEST(Args, AllKeysReadMeansNoUnused) {
  const auto a = make({"run", "--graph", "g", "--verbose"});
  (void)a.get_string("graph");
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_TRUE(a.unused_keys().empty());
}

TEST(Args, UintParsesAndRejectsNegative) {
  // `--jobs -1` used to wrap to 2^64-1 through strtoll + unsigned cast — a
  // typo'd negative count must fail loudly instead.
  const auto a = make({"run", "--jobs", "4", "--restarts", "-1", "--big", "18446744073709551615"});
  EXPECT_EQ(a.get_uint("jobs"), 4u);
  EXPECT_THROW((void)a.get_uint("restarts"), std::invalid_argument);
  EXPECT_THROW((void)a.get_uint("restarts", 8), std::invalid_argument);
  EXPECT_EQ(a.get_uint("big"), 18446744073709551615ull);
  EXPECT_EQ(a.get_uint("absent", 7), 7u);
}

TEST(Args, NumericRejectsWhitespaceAndEmpty) {
  // strtoll/strtod skipped leading whitespace; strict whole-token parsing
  // does not — and a flag-style empty value is not a number either.
  const auto a = make({"run", "--seed", " 2", "--jobs", "2 ", "--deadline"});
  EXPECT_THROW((void)a.get_int("seed"), std::invalid_argument);
  EXPECT_THROW((void)a.get_uint("jobs"), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("deadline"), std::invalid_argument);
}

TEST(Args, OutOfRangeMagnitudeThrows) {
  // strtoll clamped to LLONG_MAX with errno nobody checked; overflow must
  // throw, not silently saturate.
  const auto a = make({"run", "--seed", "99999999999999999999999999", "--jobs",
                       "18446744073709551616", "--deadline", "1e99999"});
  EXPECT_THROW((void)a.get_int("seed"), std::invalid_argument);
  EXPECT_THROW((void)a.get_uint("jobs"), std::invalid_argument);
  EXPECT_THROW((void)a.get_double("deadline"), std::invalid_argument);
}

TEST(Args, ErrorMessagesNameTheOption) {
  const auto a = make({"run", "--jobs", "2x"});
  try {
    (void)a.get_uint("jobs");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--jobs"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("2x"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace basched::util
