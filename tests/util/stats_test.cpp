#include "basched/util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace basched::util {
namespace {

TEST(Stats, MeanOfKnownSample) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, MeanEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, SummaryKnownSample) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, 2.13809, 1e-4);  // sample stddev (n-1)
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, SummaryOddMedian) {
  const std::vector<double> xs{3, 1, 2};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 2.0);
}

TEST(Stats, SummarySingleElement) {
  const std::vector<double> xs{7};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, PercentDiff) {
  EXPECT_DOUBLE_EQ(percent_diff(100.0, 115.0), 15.0);
  EXPECT_DOUBLE_EQ(percent_diff(200.0, 100.0), -50.0);
}

TEST(Stats, GeometricMean) {
  const std::vector<double> xs{1, 4, 16};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
}

TEST(Stats, GeometricMeanEmpty) { EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0); }

}  // namespace
}  // namespace basched::util
