/// Unit tests for the cooperative cancellation primitives (util/stop.hpp):
/// token/source wiring, deadline arming, the amortized RunBudget checker,
/// and the StopReason merge used by portfolio reductions.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "basched/util/stop.hpp"

namespace basched::util {
namespace {

TEST(Stop, DefaultTokenNeverStopsAndCannotStop) {
  const StopToken t;
  EXPECT_FALSE(t.stop_possible());
  EXPECT_FALSE(t.stop_requested());
}

TEST(Stop, SourceFiresEveryCopiedToken) {
  StopSource source;
  const StopToken a = source.token();
  const StopToken b = a;  // copies share the flag
  EXPECT_TRUE(a.stop_possible());
  EXPECT_FALSE(a.stop_requested());

  source.request_stop();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
  EXPECT_TRUE(source.stop_requested());

  // Sticky: stop never un-happens.
  source.request_stop();
  EXPECT_TRUE(a.stop_requested());
}

TEST(Stop, DeadlineNeverAndZeroBudgetAreUnarmed) {
  EXPECT_FALSE(Deadline::never().armed());
  EXPECT_FALSE(Deadline::never().expired());
  EXPECT_FALSE(Deadline().armed());
  // 0 means "no budget" by the CLI/serve convention, not "already expired".
  EXPECT_FALSE(Deadline::after_ms(0).armed());
  EXPECT_EQ(Deadline::never().remaining_ms(), UINT64_MAX);
}

TEST(Stop, DeadlineExpiresOnTheMonotonicClock) {
  const Deadline d = Deadline::after_ms(1);
  EXPECT_TRUE(d.armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0u);

  const Deadline far = Deadline::after_ms(60'000);
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining_ms(), 1'000u);
}

TEST(Stop, InactiveRunBudgetNeverExpires) {
  RunBudget budget;  // default: no token, no deadline
  EXPECT_FALSE(budget.active());
  for (int i = 0; i < 10'000; ++i) EXPECT_FALSE(budget.expired());
  EXPECT_EQ(budget.reason(), StopReason::completed);
}

TEST(Stop, RunBudgetTripsOnTokenWithCancelledReason) {
  StopSource source;
  RunBudget budget(source.token(), Deadline::never());
  EXPECT_TRUE(budget.active());
  EXPECT_FALSE(budget.expired());

  source.request_stop();
  EXPECT_TRUE(budget.expired());
  EXPECT_EQ(budget.reason(), StopReason::cancelled);
  // Sticky after the trip.
  EXPECT_TRUE(budget.expired());
}

TEST(Stop, RunBudgetTripsOnDeadlineWithDeadlineReason) {
  RunBudget budget(StopToken(), Deadline::after_ms(1), /*stride=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(budget.expired());
  EXPECT_EQ(budget.reason(), StopReason::deadline);
}

TEST(Stop, RunBudgetAmortizesClockReadsByStride) {
  // With a huge stride the already-expired deadline is not noticed until
  // the stride-th call — that's the amortization contract.
  RunBudget budget(StopToken(), Deadline::after_ms(1), /*stride=*/64);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  int calls = 0;
  while (!budget.expired()) ++calls;
  EXPECT_EQ(calls, 63);  // the 64th call reads the clock and trips
}

TEST(Stop, TokenBeatsDeadlineWhenBothArePending) {
  // The token is checked every call, the clock only per stride — a fired
  // token therefore always reports `cancelled`, even if the deadline also
  // passed.
  StopSource source;
  RunBudget budget(source.token(), Deadline::after_ms(1), /*stride=*/64);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  source.request_stop();
  EXPECT_TRUE(budget.expired());
  EXPECT_EQ(budget.reason(), StopReason::cancelled);
}

TEST(Stop, MergeKeepsTheMostSevereReason) {
  EXPECT_EQ(merge_stop_reason(StopReason::completed, StopReason::node_budget),
            StopReason::node_budget);
  EXPECT_EQ(merge_stop_reason(StopReason::deadline, StopReason::node_budget),
            StopReason::deadline);
  EXPECT_EQ(merge_stop_reason(StopReason::cancelled, StopReason::deadline),
            StopReason::cancelled);
  // Commutative — merge order (worker completion order) cannot matter.
  EXPECT_EQ(merge_stop_reason(StopReason::node_budget, StopReason::deadline),
            merge_stop_reason(StopReason::deadline, StopReason::node_budget));
}

TEST(Stop, ReasonNamesAreStable) {
  EXPECT_STREQ(stop_reason_name(StopReason::completed), "completed");
  EXPECT_STREQ(stop_reason_name(StopReason::node_budget), "node_budget");
  EXPECT_STREQ(stop_reason_name(StopReason::deadline), "deadline");
  EXPECT_STREQ(stop_reason_name(StopReason::cancelled), "cancelled");
}

}  // namespace
}  // namespace basched::util
