#include "basched/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace basched::util {
namespace {

TEST(Csv, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesCommas) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, QuotesQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, QuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(Csv, PlainCellUntouched) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(Csv, MultipleRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"h1", "h2"});
  w.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

TEST(Csv, EmptyRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace basched::util
