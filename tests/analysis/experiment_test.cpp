#include "basched/analysis/experiment.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/analysis/executor.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched::analysis {
namespace {

TEST(Experiment, RunOursOnG2) {
  const auto g = graph::make_g2();
  RunSpec spec;
  spec.name = "G2";
  spec.graph = &g;
  spec.deadline = 75.0;
  const auto r = run_ours(spec);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.duration, 75.0 + 1e-6);
}

TEST(Experiment, SpecValidation) {
  RunSpec spec;
  spec.deadline = 10.0;
  EXPECT_THROW((void)run_ours(spec), std::invalid_argument);  // null graph
  const auto g = graph::make_g2();
  spec.graph = &g;
  spec.deadline = 0.0;
  EXPECT_THROW((void)run_ours(spec), std::invalid_argument);
  spec.deadline = 10.0;
  spec.beta = 0.0;
  EXPECT_THROW((void)run_ours(spec), std::invalid_argument);
}

TEST(Experiment, ComparisonRowFields) {
  const auto g = graph::make_g2();
  RunSpec spec;
  spec.name = "G2";
  spec.graph = &g;
  spec.deadline = 75.0;
  const ComparisonRow row = run_comparison(spec);
  EXPECT_EQ(row.name, "G2");
  EXPECT_DOUBLE_EQ(row.deadline, 75.0);
  EXPECT_TRUE(row.ours_feasible);
  EXPECT_TRUE(row.baseline_feasible);
  EXPECT_GT(row.ours_sigma, 0.0);
  EXPECT_GT(row.baseline_sigma, 0.0);
  // percent_diff definition: 100 · (ours − baseline) / baseline, i.e. the
  // change relative to the baseline (negative = ours uses less charge).
  ASSERT_TRUE(row.percent_diff.has_value());
  EXPECT_NEAR(*row.percent_diff,
              100.0 * (row.ours_sigma - row.baseline_sigma) / row.baseline_sigma, 1e-9);
}

TEST(Experiment, PercentDiffIsEmptyWhenInfeasible) {
  const auto g = graph::make_g2();
  RunSpec spec;
  spec.name = "G2";
  spec.graph = &g;
  spec.deadline = 1e-3;  // far below CT(0): nothing is feasible
  const ComparisonRow row = run_comparison(spec);
  EXPECT_FALSE(row.ours_feasible);
  EXPECT_FALSE(row.percent_diff.has_value());
}

TEST(Experiment, ParallelComparisonsIdenticalAcrossJobs) {
  const auto g = graph::make_g2();
  const std::vector<double> deadlines{55.0, 65.0, 75.0, 85.0, 95.0};
  const auto reference = run_comparisons(g, "G2", deadlines, graph::kPaperBeta);
  for (unsigned jobs : {2u, 8u}) {
    Executor ex(jobs);
    const auto rows = run_comparisons(g, "G2", deadlines, graph::kPaperBeta, ex);
    ASSERT_EQ(rows.size(), reference.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_DOUBLE_EQ(rows[i].deadline, reference[i].deadline);
      EXPECT_EQ(rows[i].ours_feasible, reference[i].ours_feasible);
      EXPECT_DOUBLE_EQ(rows[i].ours_sigma, reference[i].ours_sigma);
      EXPECT_DOUBLE_EQ(rows[i].baseline_sigma, reference[i].baseline_sigma);
      ASSERT_EQ(rows[i].percent_diff.has_value(), reference[i].percent_diff.has_value());
      if (rows[i].percent_diff) {
        EXPECT_DOUBLE_EQ(*rows[i].percent_diff, *reference[i].percent_diff);
      }
    }
  }
}

TEST(Experiment, RunComparisonsCoversAllDeadlines) {
  const auto g = graph::make_g3();
  const auto rows = run_comparisons(g, "G3", {100.0, 150.0, 230.0}, graph::kPaperBeta);
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 0; i < rows.size(); ++i) EXPECT_EQ(rows[i].name, "G3");
  // Battery use decreases with looser deadlines (the paper's observation).
  EXPECT_GT(rows[0].ours_sigma, rows[1].ours_sigma);
  EXPECT_GT(rows[1].ours_sigma, rows[2].ours_sigma);
}

}  // namespace
}  // namespace basched::analysis
