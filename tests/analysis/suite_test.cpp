#include "basched/analysis/suite.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "basched/analysis/executor.hpp"

namespace basched::analysis {
namespace {

TEST(Suite, StandardSuiteShape) {
  const auto suite = standard_suite(7, 2);
  EXPECT_EQ(suite.size(), 10u);  // 5 families × 2
  for (const auto& inst : suite) {
    EXPECT_FALSE(inst.name.empty());
    EXPECT_GT(inst.graph.num_tasks(), 0u);
    EXPECT_TRUE(inst.graph.is_acyclic());
    // Deadline strictly between all-fastest and all-slowest.
    EXPECT_GT(inst.deadline, inst.graph.column_time(0));
    EXPECT_LE(inst.deadline,
              inst.graph.column_time(inst.graph.num_design_points() - 1) + 1e-9);
  }
}

TEST(Suite, DeterministicPerSeed) {
  const auto a = standard_suite(3, 1);
  const auto b = standard_suite(3, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_DOUBLE_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].graph.num_tasks(), b[i].graph.num_tasks());
  }
}

TEST(Suite, DifferentSeedsDiffer) {
  const auto a = standard_suite(1, 1);
  const auto b = standard_suite(2, 1);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].deadline != b[i].deadline) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Suite, TightnessControlsDeadline) {
  const auto loose = standard_suite(5, 1, 0.9);
  const auto tight = standard_suite(5, 1, 0.2);
  for (std::size_t i = 0; i < loose.size(); ++i)
    EXPECT_GT(loose[i].deadline, tight[i].deadline);
}

TEST(Suite, Validation) {
  EXPECT_THROW((void)standard_suite(1, 0), std::invalid_argument);
  EXPECT_THROW((void)standard_suite(1, 1, 0.0), std::invalid_argument);
  EXPECT_THROW((void)standard_suite(1, 1, 1.5), std::invalid_argument);
}

TEST(Suite, RunSuiteAggregates) {
  const auto suite = standard_suite(11, 1);
  const auto summary = run_suite(suite, 0.273);
  EXPECT_EQ(summary.instances, 5);
  ASSERT_EQ(summary.algorithms.size(), 4u);
  EXPECT_EQ(summary.algorithms[0].name, "ours");
  // Wins per instance sum to at least commonly_feasible (ties can exceed).
  int wins = 0;
  for (const auto& a : summary.algorithms) {
    wins += a.wins;
    EXPECT_GE(a.geomean_ratio, 1.0 - 1e-9);  // ratio vs best is >= 1
    EXPECT_LE(a.feasible, summary.instances);
  }
  EXPECT_GE(wins, summary.commonly_feasible);
}

TEST(Suite, OursCompetitive) {
  // Quality guard over the suite: our algorithm's geomean ratio to the best
  // feasible result stays within 15%.
  const auto suite = standard_suite(13, 2);
  const auto summary = run_suite(suite, 0.273);
  ASSERT_GT(summary.commonly_feasible, 0);
  EXPECT_LE(summary.algorithms[0].geomean_ratio, 1.15);
}

TEST(Suite, ParallelSummaryIdenticalAcrossJobs) {
  const auto suite = standard_suite(19, 1);
  const auto reference = run_suite(suite, 0.273);
  for (unsigned jobs : {2u, 8u}) {
    Executor ex(jobs);
    const auto summary = run_suite(suite, 0.273, ex);
    EXPECT_EQ(summary.instances, reference.instances);
    EXPECT_EQ(summary.commonly_feasible, reference.commonly_feasible);
    ASSERT_EQ(summary.algorithms.size(), reference.algorithms.size());
    for (std::size_t a = 0; a < summary.algorithms.size(); ++a) {
      EXPECT_EQ(summary.algorithms[a].feasible, reference.algorithms[a].feasible);
      EXPECT_EQ(summary.algorithms[a].wins, reference.algorithms[a].wins);
      EXPECT_DOUBLE_EQ(summary.algorithms[a].geomean_ratio,
                       reference.algorithms[a].geomean_ratio);
      EXPECT_DOUBLE_EQ(summary.algorithms[a].total_sigma, reference.algorithms[a].total_sigma);
    }
  }
}

TEST(Suite, FormatMentionsAllAlgorithms) {
  const auto suite = standard_suite(17, 1);
  const auto summary = run_suite(suite, 0.273);
  const std::string s = format_suite(summary);
  EXPECT_NE(s.find("ours"), std::string::npos);
  EXPECT_NE(s.find("RV-DP [1]"), std::string::npos);
  EXPECT_NE(s.find("Chowdhury [7]"), std::string::npos);
  EXPECT_NE(s.find("random-2k"), std::string::npos);
}

}  // namespace
}  // namespace basched::analysis
