#include "basched/analysis/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace basched::analysis {
namespace {

TEST(Executor, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(Executor::default_jobs(), 1u);
  const Executor ex;
  EXPECT_EQ(ex.jobs(), Executor::default_jobs());
}

TEST(Executor, SerialExecutorRunsInline) {
  Executor ex(1);
  EXPECT_EQ(ex.jobs(), 1u);
  std::vector<std::size_t> order;
  ex.for_each(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Executor, MapCollectsResultsInIndexOrder) {
  for (unsigned jobs : {1u, 2u, 4u, 8u}) {
    Executor ex(jobs);
    const auto out = ex.map(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(Executor, EmptyAndSingletonBatches) {
  Executor ex(4);
  EXPECT_TRUE(ex.map(0, [](std::size_t) { return 1; }).empty());
  const auto one = ex.map(1, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41u);
}

TEST(Executor, EveryItemRunsExactlyOnce) {
  Executor ex(8);
  std::vector<std::atomic<int>> hits(500);
  ex.for_each(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, ActuallyRunsConcurrently) {
  // Two items that can only finish if they overlap in time.
  Executor ex(2);
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  ex.for_each(2, [&](std::size_t) {
    std::unique_lock<std::mutex> lock(m);
    ++arrived;
    cv.notify_all();
    // Wait (bounded) until the other item arrives; a serial pool would
    // deadlock here, so the timeout doubles as the failure signal.
    EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(30), [&] { return arrived == 2; }));
  });
  EXPECT_EQ(arrived, 2);
}

TEST(Executor, ReusableAcrossBatches) {
  Executor ex(4);
  std::size_t total = 0;
  for (int round = 0; round < 20; ++round) {
    const auto out = ex.map(round, [](std::size_t i) { return i; });
    total += std::accumulate(out.begin(), out.end(), std::size_t{0});
  }
  std::size_t expected = 0;
  for (int round = 0; round < 20; ++round)
    for (int i = 0; i < round; ++i) expected += static_cast<std::size_t>(i);
  EXPECT_EQ(total, expected);
}

TEST(Executor, RethrowsLowestIndexException) {
  for (unsigned jobs : {1u, 4u}) {
    Executor ex(jobs);
    try {
      ex.for_each(50, [](std::size_t i) {
        if (i % 2 == 1) throw std::runtime_error("item " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "item 1");
    }
  }
}

TEST(Executor, BatchCompletesDespiteExceptions) {
  Executor ex(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(ex.for_each(64,
                           [&](std::size_t i) {
                             ran.fetch_add(1);
                             if (i == 0) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 64);  // remaining items still executed
}

TEST(Executor, SubmitRunsEveryTaskOffTheCallingThread) {
  Executor ex(3);
  std::atomic<int> ran{0};
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> on_caller{false};
  for (int i = 0; i < 50; ++i)
    ex.submit([&] {
      if (std::this_thread::get_id() == caller) on_caller = true;
      ran.fetch_add(1);
    });
  ex.wait_idle();
  EXPECT_EQ(ran.load(), 50);
  EXPECT_FALSE(on_caller.load());
}

TEST(Executor, SubmitRequiresWorkers) {
  Executor ex(1);
  EXPECT_THROW(ex.submit([] {}), std::logic_error);
}

TEST(Executor, SubmitCoexistsWithBatches) {
  // A long-running task must not stall fork-join batches: the batch caller
  // participates, so batches drain even while workers are busy with tasks.
  Executor ex(2);
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  ex.submit([&] {
    std::unique_lock<std::mutex> lock(m);
    cv.wait_for(lock, std::chrono::seconds(30), [&] { return release; });
  });
  const auto out = ex.map(10, [](std::size_t i) { return i; });
  ASSERT_EQ(out.size(), 10u);
  {
    const std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  ex.wait_idle();
}

TEST(Executor, TaskExceptionsDoNotKillWorkers) {
  Executor ex(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    ex.submit([&] {
      ran.fetch_add(1);
      throw std::runtime_error("task error: swallowed by contract");
    });
  ex.wait_idle();
  EXPECT_EQ(ran.load(), 8);
  // The pool still works afterwards.
  ex.submit([&] { ran.fetch_add(1); });
  ex.wait_idle();
  EXPECT_EQ(ran.load(), 9);
}

}  // namespace
}  // namespace basched::analysis
