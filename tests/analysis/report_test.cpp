#include "basched/analysis/report.hpp"

#include <gtest/gtest.h>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched::analysis {
namespace {

TEST(Report, FormatSequenceUsesNames) {
  const auto g = graph::make_g3();
  const std::string s = format_sequence(g, {0, 3, 14});
  EXPECT_EQ(s, "T1,T4,T15");
}

TEST(Report, FormatAssignmentUsesOneBasedColumns) {
  const auto g = graph::make_g3();
  core::Assignment a(g.num_tasks(), 4);
  a[3] = 0;
  const std::string s = format_assignment({0, 3, 14}, a);
  EXPECT_EQ(s, "P5,P1,P5");
}

TEST(Report, Table2ListsAllIterations) {
  const auto g = graph::make_g3();
  RunSpec spec;
  spec.name = "G3";
  spec.graph = &g;
  spec.deadline = graph::kG3ExampleDeadline;
  const auto r = run_ours(spec);
  const std::string t2 = format_table2(g, r);
  EXPECT_NE(t2.find("S1"), std::string::npos);
  EXPECT_NE(t2.find("S1w"), std::string::npos);
  EXPECT_NE(t2.find("T1"), std::string::npos);
  EXPECT_NE(t2.find("P5"), std::string::npos);
}

TEST(Report, Table3ShowsWindowColumns) {
  const auto g = graph::make_g3();
  RunSpec spec;
  spec.name = "G3";
  spec.graph = &g;
  spec.deadline = graph::kG3ExampleDeadline;
  const auto r = run_ours(spec);
  const std::string t3 = format_table3(r, g.num_design_points());
  EXPECT_NE(t3.find("sigma 1:5"), std::string::npos);
  EXPECT_NE(t3.find("sigma 4:5"), std::string::npos);
  EXPECT_NE(t3.find("min sigma"), std::string::npos);
}

TEST(Report, Table4ContainsRows) {
  const auto g = graph::make_g2();
  const auto rows = run_comparisons(g, "G2", {55.0, 75.0}, graph::kPaperBeta);
  const std::string t4 = format_table4(rows);
  EXPECT_NE(t4.find("G2"), std::string::npos);
  EXPECT_NE(t4.find("% vs [1]"), std::string::npos);
  EXPECT_NE(t4.find("55"), std::string::npos);
}

TEST(Report, Table4MarksInfeasible) {
  ComparisonRow row;
  row.name = "X";
  row.deadline = 5.0;
  row.ours_feasible = false;
  row.baseline_feasible = false;
  const std::string t4 = format_table4({row});
  EXPECT_NE(t4.find("infeas"), std::string::npos);
}

}  // namespace
}  // namespace basched::analysis
