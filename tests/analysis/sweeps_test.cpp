#include "basched/analysis/sweeps.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "basched/analysis/executor.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched::analysis {
namespace {

TEST(DeadlineSweep, CoversRangeEvenly) {
  const auto g = graph::make_g2();
  const auto pts = deadline_sweep(g, 50.0, 100.0, 6, graph::kPaperBeta);
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_DOUBLE_EQ(pts.front().deadline, 50.0);
  EXPECT_DOUBLE_EQ(pts.back().deadline, 100.0);
  EXPECT_NEAR(pts[1].deadline - pts[0].deadline, 10.0, 1e-12);
}

TEST(DeadlineSweep, InfeasibleBelowColumnZeroTime) {
  const auto g = graph::make_g2();  // CT(0) = 42.2
  const auto pts = deadline_sweep(g, 30.0, 50.0, 3, graph::kPaperBeta);
  EXPECT_FALSE(pts.front().ours_feasible);
  EXPECT_FALSE(pts.front().rvdp_feasible);
  EXPECT_TRUE(pts.back().ours_feasible);
}

TEST(DeadlineSweep, SigmaMonotoneNonIncreasingForOurs) {
  const auto g = graph::make_g3();
  const auto pts = deadline_sweep(g, 100.0, 240.0, 6, graph::kPaperBeta);
  double prev = 1e300;
  for (const auto& p : pts) {
    if (!p.ours_feasible) continue;
    EXPECT_LE(p.ours_sigma, prev * 1.02);  // near-monotone decrease
    prev = p.ours_sigma;
  }
}

TEST(DeadlineSweep, CsvWellFormed) {
  const auto g = graph::make_g2();
  const auto pts = deadline_sweep(g, 50.0, 100.0, 3, graph::kPaperBeta);
  const std::string csv = deadline_sweep_csv(pts);
  EXPECT_NE(csv.find("deadline,ours,rvdp,chowdhury"), std::string::npos);
  std::size_t lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1 + pts.size());
}

TEST(DeadlineSweep, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)deadline_sweep(g, 0.0, 10.0, 3, 0.273), std::invalid_argument);
  EXPECT_THROW((void)deadline_sweep(g, 10.0, 5.0, 3, 0.273), std::invalid_argument);
  EXPECT_THROW((void)deadline_sweep(g, 10.0, 20.0, 1, 0.273), std::invalid_argument);
}

TEST(BetaSweep, ReportsEveryBeta) {
  const auto g = graph::make_g2();
  const auto pts = beta_sweep(g, 75.0, {0.1, 0.273, 1.0});
  ASSERT_EQ(pts.size(), 3u);
  for (const auto& p : pts) {
    EXPECT_TRUE(p.feasible);
    EXPECT_GE(p.sigma, p.energy);  // σ >= delivered under any β
  }
}

TEST(BetaSweep, SigmaPremiumShrinksWithBeta) {
  const auto g = graph::make_g3();
  const auto pts = beta_sweep(g, 230.0, {0.1, 0.5, 5.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_GT(pts[0].sigma / pts[0].energy, pts[1].sigma / pts[1].energy);
  EXPECT_GT(pts[1].sigma / pts[1].energy, pts[2].sigma / pts[2].energy);
  EXPECT_NEAR(pts[2].sigma / pts[2].energy, 1.0, 0.05);
}

TEST(BetaSweep, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)beta_sweep(g, 0.0, {0.3}), std::invalid_argument);
  EXPECT_THROW((void)beta_sweep(g, 75.0, {}), std::invalid_argument);
  EXPECT_THROW((void)beta_sweep(g, 75.0, {0.3, -1.0}), std::invalid_argument);
}

TEST(FastColumnBoundary, ExplicitForSmallM) {
  // Columns [0, boundary) count as fast; the middle column of an odd m is
  // the median and classifies as fast.
  EXPECT_EQ(fast_column_boundary(3), 2u);
  EXPECT_EQ(fast_column_boundary(4), 2u);
  EXPECT_EQ(fast_column_boundary(5), 3u);
  EXPECT_EQ(fast_column_boundary(1), 1u);
  EXPECT_EQ(fast_column_boundary(2), 1u);
}

TEST(ParallelSweep, DeadlineSweepCsvByteIdenticalAcrossJobs) {
  const auto g = graph::make_g3();
  Executor serial(1);
  const std::string reference =
      deadline_sweep_csv(deadline_sweep(g, 100.0, 240.0, 9, graph::kPaperBeta, serial));
  for (unsigned jobs : {2u, 8u}) {
    Executor ex(jobs);
    const std::string csv =
        deadline_sweep_csv(deadline_sweep(g, 100.0, 240.0, 9, graph::kPaperBeta, ex));
    EXPECT_EQ(csv, reference) << "jobs = " << jobs;
  }
}

TEST(ParallelSweep, BetaSweepIdenticalAcrossJobs) {
  const auto g = graph::make_g2();
  const std::vector<double> betas{0.1, 0.2, 0.273, 0.5, 1.0, 2.0};
  const auto reference = beta_sweep(g, 75.0, betas);
  for (unsigned jobs : {2u, 8u}) {
    Executor ex(jobs);
    const auto pts = beta_sweep(g, 75.0, betas, ex);
    ASSERT_EQ(pts.size(), reference.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      EXPECT_DOUBLE_EQ(pts[i].beta, reference[i].beta);
      EXPECT_EQ(pts[i].feasible, reference[i].feasible);
      EXPECT_DOUBLE_EQ(pts[i].sigma, reference[i].sigma);
      EXPECT_DOUBLE_EQ(pts[i].energy, reference[i].energy);
      EXPECT_EQ(pts[i].fast_tasks, reference[i].fast_tasks);
    }
  }
}

TEST(ParallelSweep, PropagatesWorkItemErrors) {
  graph::TaskGraph empty;
  Executor ex(4);
  EXPECT_THROW((void)deadline_sweep(empty, 10.0, 20.0, 4, 0.273, ex), std::invalid_argument);
}

}  // namespace
}  // namespace basched::analysis
