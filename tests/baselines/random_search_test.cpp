#include "basched/baselines/random_search.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/graph/topology.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

TEST(RandomTopoOrder, AlwaysTopological) {
  const auto g = graph::make_g3();
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(graph::is_topological_order(g, random_topological_order(g, rng)));
}

TEST(RandomTopoOrder, ExploresMultipleOrders) {
  const auto g = graph::make_g3();
  util::Rng rng(6);
  std::set<std::vector<graph::TaskId>> seen;
  for (int i = 0; i < 50; ++i) seen.insert(random_topological_order(g, rng));
  EXPECT_GT(seen.size(), 5u);
}

TEST(RandomSearch, FeasibleOnG2) {
  const auto g = graph::make_g2();
  RandomSearchOptions opts;
  opts.samples = 3000;
  const auto r = schedule_random_search(g, 95.0, kModel, opts);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(r.schedule.is_valid(g));
  EXPECT_LE(r.duration, 95.0 + 1e-6);
}

TEST(RandomSearch, DeterministicPerSeed) {
  const auto g = graph::make_g2();
  RandomSearchOptions opts;
  opts.samples = 500;
  opts.seed = 77;
  const auto a = schedule_random_search(g, 95.0, kModel, opts);
  const auto b = schedule_random_search(g, 95.0, kModel, opts);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) { EXPECT_DOUBLE_EQ(a.sigma, b.sigma); }
}

TEST(RandomSearch, InfeasibleDeadline) {
  const auto g = graph::make_g3();
  RandomSearchOptions opts;
  opts.samples = 200;
  const auto r = schedule_random_search(g, 50.0, kModel, opts);
  EXPECT_FALSE(r.feasible);
}

TEST(RandomSearch, MoreSamplesNeverHurt) {
  const auto g = graph::make_g2();
  RandomSearchOptions small, large;
  small.samples = 100;
  large.samples = 5000;
  small.seed = large.seed = 3;
  const auto rs = schedule_random_search(g, 95.0, kModel, small);
  const auto rl = schedule_random_search(g, 95.0, kModel, large);
  if (rs.feasible) {
    ASSERT_TRUE(rl.feasible);
    EXPECT_LE(rl.sigma, rs.sigma + 1e-9);  // shared seed replays the prefix
  }
}

TEST(RandomSearch, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)schedule_random_search(g, 0.0, kModel), std::invalid_argument);
  RandomSearchOptions opts;
  opts.samples = 0;
  EXPECT_THROW((void)schedule_random_search(g, 95.0, kModel, opts), std::invalid_argument);
}

}  // namespace
}  // namespace basched::baselines
