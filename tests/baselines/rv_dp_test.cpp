#include "basched/baselines/rv_dp.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/list_scheduler.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

TEST(RvDp, MinEnergyAssignmentOnTinyInstance) {
  // Two tasks, two points each. Deadline admits exactly one slow task; the
  // DP must slow the task with the larger energy saving.
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{800.0, 1.0}, {100.0, 2.0}}));  // saves 600 by slowing
  g.add_task(graph::Task("B", {{500.0, 1.0}, {400.0, 2.0}}));  // saves -300 (slowing costs!)
  g.add_edge(0, 1);
  const auto a = min_energy_assignment(g, 3.0);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, (core::Assignment{1, 0}));  // slow A, keep B fast
}

TEST(RvDp, GenerousDeadlinePicksGlobalMinEnergy) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{800.0, 1.0}, {100.0, 2.0}}));
  g.add_task(graph::Task("B", {{500.0, 1.0}, {400.0, 2.0}}));
  const auto a = min_energy_assignment(g, 100.0);
  ASSERT_TRUE(a.has_value());
  // A: 200 < 800 → slow; B: 500 < 800 → fast.
  EXPECT_EQ(*a, (core::Assignment{1, 0}));
}

TEST(RvDp, InfeasibleDeadline) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{800.0, 2.0}, {100.0, 4.0}}));
  EXPECT_FALSE(min_energy_assignment(g, 1.0).has_value());
  const auto r = schedule_rv_dp(g, 1.0, kModel);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.error.empty());
}

TEST(RvDp, CeilRoundingKeepsRealFeasibility) {
  // Durations that do not align with the grid: rounding up must never emit a
  // schedule that exceeds the real deadline.
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{400.0, 1.04}, {100.0, 2.09}}));
  g.add_task(graph::Task("B", {{400.0, 1.04 }, {100.0, 2.09}}));
  for (double d : {2.2, 3.2, 4.2, 5.0}) {
    const auto r = schedule_rv_dp(g, d, kModel);
    if (r.feasible) { EXPECT_LE(r.duration, d + 1e-9) << "deadline " << d; }
  }
}

TEST(RvDp, G3PaperDeadlinesAllFeasible) {
  const auto g = graph::make_g3();
  for (double d : graph::kG3Deadlines) {
    const auto r = schedule_rv_dp(g, d, kModel);
    ASSERT_TRUE(r.feasible) << "deadline " << d;
    EXPECT_TRUE(r.schedule.is_valid(g));
    EXPECT_LE(r.duration, d + 1e-9);
  }
}

TEST(RvDp, EnergyOptimalAmongAssignments) {
  // On G3 with d = 230 the DP's energy must not exceed that of any uniform
  // column assignment that fits the deadline.
  const auto g = graph::make_g3();
  const auto r = schedule_rv_dp(g, 230.0, kModel);
  ASSERT_TRUE(r.feasible);
  for (std::size_t col = 0; col < g.num_design_points(); ++col) {
    if (g.column_time(col) > 230.0) continue;
    double e = 0.0;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) e += g.task(v).point(col).energy();
    EXPECT_LE(r.energy, e + 1e-6);
  }
}

TEST(RvDp, TighterDeadlineNeverDecreasesEnergy) {
  const auto g = graph::make_g2();
  double prev = -1.0;
  for (double d : {95.0, 75.0, 55.0}) {
    const auto r = schedule_rv_dp(g, d, kModel);
    ASSERT_TRUE(r.feasible);
    if (prev >= 0.0) { EXPECT_GE(r.energy, prev - 1e-9); }
    prev = r.energy;
  }
}

TEST(RvDp, ResolutionValidation) {
  const auto g = graph::make_g2();
  RvDpOptions opts;
  opts.time_resolution = 0.0;
  EXPECT_THROW((void)schedule_rv_dp(g, 55.0, kModel, opts), std::invalid_argument);
  EXPECT_THROW((void)schedule_rv_dp(g, 0.0, kModel), std::invalid_argument);
}

TEST(RvDp, CoarserGridStillFeasible) {
  const auto g = graph::make_g3();
  RvDpOptions coarse;
  coarse.time_resolution = 1.0;
  const auto r = schedule_rv_dp(g, 230.0, kModel, coarse);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.duration, 230.0 + 1e-9);
}

TEST(RvDp, SequencingUsesGreedyMaxCurrent) {
  const auto g = graph::make_g3();
  const auto r = schedule_rv_dp(g, 230.0, kModel);
  ASSERT_TRUE(r.feasible);
  const auto expect = core::greedy_max_current_sequence(g, r.schedule.assignment);
  EXPECT_EQ(r.schedule.sequence, expect);
}

}  // namespace
}  // namespace basched::baselines
