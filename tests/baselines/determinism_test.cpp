/// Determinism and no-full-evaluation guarantees of the rewired baselines.
///
/// 1. Every stochastic baseline is bit-identical across runs for a fixed
///    seed (the delta-evaluation rewire must not introduce run-to-run
///    nondeterminism).
/// 2. The `RakhmatovVrudhulaModel::full_evaluations()` probe shows that no
///    search *loop* prices candidates with full-profile charge_lost sweeps
///    anymore: the only full evaluations left are the single canonical
///    re-pricings of the returned schedule, outside the loops.
#include <gtest/gtest.h>

#include "basched/baselines/annealing.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/exhaustive.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph small_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::make_series_parallel(7, synth, rng);
}

double mid_deadline(const graph::TaskGraph& g) {
  return g.column_time(0) +
         0.6 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));
}

void expect_identical(const ScheduleResult& a, const ScheduleResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.schedule.assignment, b.schedule.assignment);
  EXPECT_EQ(a.sigma, b.sigma);  // bit-identical, not just near
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(BaselineDeterminism, AnnealingBitIdenticalPerSeed) {
  const auto g = small_graph(11);
  const double d = mid_deadline(g);
  AnnealingOptions opts;
  opts.iterations = 3000;
  opts.seed = 42;
  expect_identical(schedule_annealing(g, d, kModel, opts),
                   schedule_annealing(g, d, kModel, opts));
}

TEST(BaselineDeterminism, RandomSearchBitIdenticalPerSeed) {
  const auto g = small_graph(12);
  const double d = mid_deadline(g);
  RandomSearchOptions opts;
  opts.samples = 500;
  opts.seed = 7;
  expect_identical(schedule_random_search(g, d, kModel, opts),
                   schedule_random_search(g, d, kModel, opts));
}

TEST(BaselineDeterminism, ExhaustiveAndBnbBitIdentical) {
  const auto g = small_graph(13);
  const double d = mid_deadline(g);
  const auto e1 = schedule_exhaustive(g, d, kModel);
  const auto e2 = schedule_exhaustive(g, d, kModel);
  ASSERT_TRUE(e1.has_value() && e2.has_value());
  expect_identical(*e1, *e2);
  const auto b1 = schedule_branch_and_bound(g, d, kModel);
  const auto b2 = schedule_branch_and_bound(g, d, kModel);
  expect_identical(b1, b2);
}

TEST(BaselineDeterminism, EffortCountersPopulated) {
  const auto g = small_graph(14);
  const double d = mid_deadline(g);
  AnnealingOptions aopts;
  aopts.iterations = 1000;
  const auto sa = schedule_annealing(g, d, kModel, aopts);
  EXPECT_EQ(sa.nodes_explored, 1000u);
  EXPECT_GT(sa.evaluations, 0u);
  RandomSearchOptions ropts;
  ropts.seed = 1;
  ropts.samples = 200;
  const auto rnd = schedule_random_search(g, d, kModel, ropts);
  EXPECT_EQ(rnd.nodes_explored, 200u);
  EXPECT_GT(rnd.evaluations, 0u);
  EXPECT_LE(rnd.evaluations, 201u);  // <= samples (+1 would mean a stray count)
  const auto opt = schedule_exhaustive(g, d, kModel);
  ASSERT_TRUE(opt.has_value());
  EXPECT_GT(opt->nodes_explored, 0u);
  EXPECT_GT(opt->evaluations, 0u);
  BnbStats stats;
  const auto bnb = schedule_branch_and_bound(g, d, kModel, {}, &stats);
  EXPECT_EQ(bnb.nodes_explored, stats.nodes_visited);
}

// ---- full_evaluations_ probe: search loops never price full profiles ------

TEST(SearchLoopProbe, AnnealingRunsExactlyOneFullEvaluation) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = small_graph(21);
  const double d = mid_deadline(g);
  AnnealingOptions opts;
  opts.iterations = 2000;
  const std::uint64_t before = model.full_evaluations();
  const auto r = schedule_annealing(g, d, model, opts);
  ASSERT_TRUE(r.feasible);
  // The single full evaluation is the canonical re-pricing of the returned
  // schedule, outside the loop; 2000 candidate pricings never show up.
  EXPECT_EQ(model.full_evaluations(), before + 1);
}

TEST(SearchLoopProbe, RandomSearchRunsExactlyOneFullEvaluation) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = small_graph(22);
  const double d = mid_deadline(g);
  const std::uint64_t before = model.full_evaluations();
  RandomSearchOptions ropts;
  ropts.seed = 3;
  ropts.samples = 500;
  const auto r = schedule_random_search(g, d, model, ropts);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(model.full_evaluations(), before + 1);
}

TEST(SearchLoopProbe, ExhaustiveRunsExactlyOneFullEvaluation) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = small_graph(23);
  const double d = mid_deadline(g);
  const std::uint64_t before = model.full_evaluations();
  const auto r = schedule_exhaustive(g, d, model);
  ASSERT_TRUE(r.has_value() && r->feasible);
  EXPECT_EQ(model.full_evaluations(), before + 1);
}

TEST(SearchLoopProbe, BnbUnseededRunsExactlyOneFullEvaluation) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = small_graph(24);
  const double d = mid_deadline(g);
  BnbOptions opts;
  opts.seed_with_heuristic = false;
  const std::uint64_t before = model.full_evaluations();
  const auto r = schedule_branch_and_bound(g, d, model, opts);
  ASSERT_TRUE(r.feasible);
  // O(terms) leaf pricing via the evaluator; the one full evaluation is the
  // final canonical re-pricing of the optimum.
  EXPECT_EQ(model.full_evaluations(), before + 1);
}

TEST(SearchLoopProbe, IterativeHeuristicRunsExactlyOneFullEvaluation) {
  const battery::RakhmatovVrudhulaModel model(0.273);
  const auto g = graph::make_g2();
  const std::uint64_t before = model.full_evaluations();
  const auto r = core::schedule_battery_aware(g, 75.0, model);
  ASSERT_TRUE(r.feasible);
  // Window sweeps and Eq. 4 re-sequencing all price through the evaluator;
  // only the returned schedule's final report is a full evaluation.
  EXPECT_EQ(model.full_evaluations(), before + 1);
}

}  // namespace
}  // namespace basched::baselines
