#include "basched/baselines/exhaustive.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/battery_cost.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/topology.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph tiny_graph() {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{800.0, 1.0}, {100.0, 2.0}}));
  g.add_task(graph::Task("B", {{600.0, 1.0}, {75.0, 2.0}}));
  g.add_task(graph::Task("C", {{400.0, 1.0}, {50.0, 2.0}}));
  g.add_edge(0, 1);
  return g;  // C independent of the A→B chain
}

TEST(Exhaustive, FindsOptimum) {
  const auto g = tiny_graph();
  const auto r = schedule_exhaustive(g, 5.0, kModel);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->feasible);
  EXPECT_TRUE(r->schedule.is_valid(g));
  EXPECT_LE(r->duration, 5.0 + 1e-9);

  // Verify optimality by brute force here in the test.
  const auto orders = graph::all_topological_orders(g, 100);
  ASSERT_TRUE(orders.has_value());
  double best = 1e300;
  for (const auto& order : *orders) {
    for (int mask = 0; mask < 8; ++mask) {
      core::Assignment a{static_cast<std::size_t>(mask & 1),
                         static_cast<std::size_t>((mask >> 1) & 1),
                         static_cast<std::size_t>((mask >> 2) & 1)};
      const core::Schedule s{order, a};
      if (s.duration(g) > 5.0) continue;
      best = std::min(best, core::calculate_battery_cost_unchecked(g, s, kModel).sigma);
    }
  }
  EXPECT_NEAR(r->sigma, best, 1e-9);
}

TEST(Exhaustive, InfeasibleDeadlineReported) {
  const auto g = tiny_graph();
  const auto r = schedule_exhaustive(g, 2.5, kModel);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->feasible);
  EXPECT_FALSE(r->error.empty());
}

TEST(Exhaustive, NodeBudgetReportsTruncation) {
  util::Rng rng(3);
  graph::DesignPointSynthesis synth;
  synth.num_points = 2;
  const auto g = graph::make_independent(8, synth, rng);  // 40320 orders
  ExhaustiveOptions opts;
  opts.max_nodes = 1000;
  const auto r = schedule_exhaustive(g, 1e6, kModel, opts);
  ASSERT_TRUE(r.has_value());
  // The budget trips mid-walk: the best-so-far is returned and the
  // truncation is *reported*, never silent.
  EXPECT_TRUE(r->truncated());
  EXPECT_TRUE(r->feasible);  // a loose deadline: early leaves are feasible
  EXPECT_LE(r->nodes_explored, 1001u);
}

TEST(Exhaustive, TruncatedInfeasibleDoesNotClaimUnmeetable) {
  util::Rng rng(3);
  graph::DesignPointSynthesis synth;
  synth.num_points = 2;
  const auto g = graph::make_independent(8, synth, rng);
  ExhaustiveOptions opts;
  opts.max_nodes = 2;  // stops before any leaf
  const auto r = schedule_exhaustive(g, g.column_time(0), kModel, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->feasible);
  EXPECT_TRUE(r->truncated());
  // An under-searched tree proves nothing about the deadline.
  EXPECT_EQ(r->error.find("unmeetable"), std::string::npos);
  EXPECT_NE(r->error.find("budget"), std::string::npos);
}

TEST(Exhaustive, ExactByDefaultAndUntruncated) {
  const auto g = tiny_graph();
  const auto r = schedule_exhaustive(g, 5.0, kModel);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(r->truncated());
}

TEST(Exhaustive, UnboundedBudgetWalksEverything) {
  const auto g = tiny_graph();
  ExhaustiveOptions opts;
  opts.max_nodes = 0;  // explicit "no budget"
  const auto bounded = schedule_exhaustive(g, 5.0, kModel);
  const auto unbounded = schedule_exhaustive(g, 5.0, kModel, opts);
  ASSERT_TRUE(bounded.has_value() && unbounded.has_value());
  EXPECT_FALSE(unbounded->truncated());
  EXPECT_EQ(bounded->sigma, unbounded->sigma);
  EXPECT_EQ(bounded->nodes_explored, unbounded->nodes_explored);
}

TEST(Exhaustive, AssignmentLimitAborts) {
  util::Rng rng(4);
  graph::DesignPointSynthesis synth;
  synth.num_points = 6;
  const auto g = graph::make_chain(9, synth, rng);  // 6^9 ≈ 10M assignments
  ExhaustiveOptions opts;
  opts.max_assignments = 1000;
  EXPECT_FALSE(schedule_exhaustive(g, 1e6, kModel, opts).has_value());
}

TEST(Exhaustive, Validation) {
  const auto g = tiny_graph();
  EXPECT_THROW((void)schedule_exhaustive(g, 0.0, kModel), std::invalid_argument);
}

}  // namespace
}  // namespace basched::baselines
