/// The B&B walk visitor's leaf fan (peek_extend_block over all surviving
/// depth-(n−1) children) must be unobservable in every output: incumbent σ
/// and schedule, found/aborted flags, and all node/prune counters equal the
/// sequential extend-σ-pop path — including on runs truncated mid-search by
/// the node budget. Only the evaluator's raw evaluations() counter may
/// drift (< num_design_points) on a truncated run, so it is deliberately
/// NOT compared here.
#include "basched/baselines/bnb_walk.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/order_tree.hpp"
#include "basched/core/schedule_evaluator.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines::detail {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph random_graph(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  switch (seed % 3) {
    case 0:
      return graph::make_chain(n, synth, rng);
    case 1:
      return graph::make_series_parallel(n, synth, rng);
    default:
      return graph::make_layered_random(3, (n + 2) / 3, 0.4, synth, rng);
  }
}

BnbWalkVisitor run_walk(const graph::TaskGraph& g, double deadline, std::uint64_t max_nodes,
                        bool fan) {
  core::ScheduleEvaluator eval(g, kModel);
  core::OrderTreeWalker walker(g, eval);
  BnbWalkVisitor v;
  v.deadline = deadline;
  v.max_nodes = max_nodes;
  v.leaf_fan = fan;
  (void)walker.walk(v);
  return v;
}

void expect_identical(const BnbWalkVisitor& fan, const BnbWalkVisitor& seq,
                      const std::string& ctx) {
  EXPECT_EQ(fan.found, seq.found) << ctx;
  EXPECT_EQ(fan.aborted(), seq.aborted()) << ctx;
  EXPECT_EQ(fan.nan_sigma, seq.nan_sigma) << ctx;
  EXPECT_EQ(fan.best_sigma, seq.best_sigma) << ctx;  // bitwise, incl. +inf
  EXPECT_EQ(fan.best.sequence, seq.best.sequence) << ctx;
  EXPECT_EQ(fan.best.assignment, seq.best.assignment) << ctx;
  EXPECT_EQ(fan.stats.nodes_visited, seq.stats.nodes_visited) << ctx;
  EXPECT_EQ(fan.stats.pruned_deadline, seq.stats.pruned_deadline) << ctx;
  EXPECT_EQ(fan.stats.pruned_sigma, seq.stats.pruned_sigma) << ctx;
}

TEST(BnbWalk, LeafFanMatchesSequentialWalkOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = random_graph(seed, 7 + seed % 3);
    const double lo = g.column_time(0);
    const double hi = g.column_time(g.num_design_points() - 1);
    for (const double frac : {0.3, 0.7, 1.0}) {
      const double deadline = lo + frac * (hi - lo);
      const auto fan = run_walk(g, deadline, std::numeric_limits<std::uint64_t>::max(), true);
      const auto seq = run_walk(g, deadline, std::numeric_limits<std::uint64_t>::max(), false);
      expect_identical(fan, seq,
                       "seed=" + std::to_string(seed) + " frac=" + std::to_string(frac));
      if (frac == 1.0) {
        EXPECT_TRUE(fan.found);  // slowest-everywhere fits
      }
    }
  }
}

TEST(BnbWalk, LeafFanMatchesSequentialWalkWhenBudgetTruncates) {
  // Truncation can hit mid-fan: the fan has already block-priced lanes the
  // sequential path never reaches, but every *observable* output — the
  // incumbent at abort, node/prune counters, the aborted flag — must agree.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto g = random_graph(seed, 8);
    const double deadline = g.column_time(g.num_design_points() - 1);
    for (const std::uint64_t budget : {5u, 23u, 101u, 517u}) {
      const auto fan = run_walk(g, deadline, budget, true);
      const auto seq = run_walk(g, deadline, budget, false);
      expect_identical(fan, seq,
                       "seed=" + std::to_string(seed) + " budget=" + std::to_string(budget));
    }
  }
}

TEST(BnbWalk, InfeasibleDeadlinePrunesEverythingIdentically) {
  const auto g = random_graph(2, 7);
  const auto fan = run_walk(g, g.column_time(0) * 0.5, 1u << 20, true);
  const auto seq = run_walk(g, g.column_time(0) * 0.5, 1u << 20, false);
  expect_identical(fan, seq, "infeasible");
  EXPECT_FALSE(fan.found);
}

}  // namespace
}  // namespace basched::baselines::detail
