/// Determinism contract of the parallel search layer: the frontier-split
/// B&B and the restart portfolios must return *byte-identical* results —
/// feasibility, schedule, σ, duration, energy — for any executor job count
/// (the split and the reduction never consult the job count or thread
/// timing; only the effort counters of the parallel B&B may vary, because
/// the shared incumbent bound prunes more or less depending on when workers
/// publish it).
#include "basched/baselines/parallel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/baselines/annealing.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph small_graph(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::make_series_parallel(n, synth, rng);
}

double mid_deadline(const graph::TaskGraph& g) {
  return g.column_time(0) +
         0.6 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));
}

void expect_same_payload(const ScheduleResult& a, const ScheduleResult& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.schedule.assignment, b.schedule.assignment);
  EXPECT_EQ(a.sigma, b.sigma);  // exact bits, not just near
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.energy, b.energy);
}

TEST(ParallelBnb, ByteIdenticalAcrossJobs) {
  for (std::uint64_t seed : {3u, 7u, 11u}) {
    const auto g = small_graph(seed, 8);
    const double d = mid_deadline(g);
    std::optional<ScheduleResult> reference;
    for (const unsigned jobs : {1u, 2u, 8u}) {
      analysis::Executor executor(jobs);
      const auto r = schedule_branch_and_bound_parallel(g, d, kModel, executor);
      EXPECT_FALSE(r.truncated()) << "seed " << seed << " jobs " << jobs;
      EXPECT_GT(r.nodes_explored, 0u);
      EXPECT_GT(r.evaluations, 0u);
      if (!reference) {
        reference = r;
      } else {
        expect_same_payload(*reference, r);
      }
    }
  }
}

TEST(ParallelBnb, MatchesSequentialOptimum) {
  for (std::uint64_t seed : {1u, 2u, 5u, 9u}) {
    const auto g = small_graph(seed, 7);
    const double d = mid_deadline(g);
    const auto sequential = schedule_branch_and_bound(g, d, kModel);
    analysis::Executor executor(2);
    BnbStats stats;
    const auto parallel = schedule_branch_and_bound_parallel(g, d, kModel, executor, {}, &stats);
    ASSERT_EQ(sequential.feasible, parallel.feasible);
    if (sequential.feasible) {
      EXPECT_NEAR(parallel.sigma, sequential.sigma,
                  1e-12 * std::max(1.0, sequential.sigma))
          << "seed " << seed;
    }
    EXPECT_GT(stats.nodes_visited, 0u);
  }
}

TEST(ParallelBnb, ExplicitFrontierDepthStillIdentical) {
  const auto g = small_graph(4, 8);
  const double d = mid_deadline(g);
  ParallelBnbOptions opts;
  opts.frontier_depth = 3;
  std::optional<ScheduleResult> reference;
  for (const unsigned jobs : {1u, 8u}) {
    analysis::Executor executor(jobs);
    const auto r = schedule_branch_and_bound_parallel(g, d, kModel, executor, opts);
    EXPECT_FALSE(r.truncated());
    if (!reference) {
      reference = r;
    } else {
      expect_same_payload(*reference, r);
    }
  }
}

TEST(ParallelBnb, UnmeetableDeadlineReported) {
  const auto g = graph::make_g3();
  analysis::Executor executor(2);
  const auto r = schedule_branch_and_bound_parallel(g, 50.0, kModel, executor);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.truncated());
  EXPECT_FALSE(r.error.empty());
}

TEST(ParallelBnb, SharedNodeBudgetReportedAsTruncated) {
  util::Rng rng(5);
  graph::DesignPointSynthesis synth;
  synth.num_points = 4;
  const auto g = graph::make_independent(9, synth, rng);
  ParallelBnbOptions opts;
  opts.base.max_nodes = 50;
  opts.base.seed_with_heuristic = false;
  analysis::Executor executor(2);
  const auto r = schedule_branch_and_bound_parallel(g, 1e6, kModel, executor, opts);
  EXPECT_TRUE(r.truncated());
  if (!r.feasible) {
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(ParallelBnb, WorkerBudgetTripPropagatesToMergedResult) {
  // Budget sized so the *enumeration pass completes* but the shared counter
  // trips inside the worker phase: `truncated` must survive the merge no
  // matter which worker hit it (it used to be derivable only from nullopt,
  // which conflated "no result" with "best-found-so-far").
  util::Rng rng(9);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  const auto g = graph::make_independent(8, synth, rng);
  ParallelBnbOptions opts;
  opts.frontier_depth = 1;  // enumeration visits only the depth-0/1 shell
  opts.base.seed_with_heuristic = true;
  for (const std::uint64_t budget : {200u, 400u, 800u}) {
    opts.base.max_nodes = budget;
    analysis::Executor executor(2);
    const auto r = schedule_branch_and_bound_parallel(g, 1e6, kModel, executor, opts);
    if (!r.truncated()) continue;  // generous budget: nothing to check
    // Seeded: the merged result still carries the best incumbent found.
    ASSERT_TRUE(r.feasible) << r.error;
    return;
  }
  FAIL() << "no budget in the sweep tripped inside the worker phase";
}

TEST(ParallelBnb, Validation) {
  const auto g = graph::make_g2();
  analysis::Executor executor(1);
  EXPECT_THROW((void)schedule_branch_and_bound_parallel(g, 0.0, kModel, executor),
               std::invalid_argument);
}

TEST(AnnealingPortfolio, ByteIdenticalAcrossJobsIncludingCounters) {
  const auto g = small_graph(21, 10);
  const double d = mid_deadline(g);
  AnnealingPortfolioOptions opts;
  opts.annealing.iterations = 1500;
  opts.annealing.seed = 9;
  opts.restarts = 5;
  std::optional<ScheduleResult> reference;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    analysis::Executor executor(jobs);
    const auto r = schedule_annealing_portfolio(g, d, kModel, executor, opts);
    ASSERT_TRUE(r.feasible) << r.error;
    if (!reference) {
      reference = r;
    } else {
      expect_same_payload(*reference, r);
      // Portfolio counters are exact sums over deterministic restarts, so
      // unlike the parallel B&B they are reproducible bit-for-bit too.
      EXPECT_EQ(reference->nodes_explored, r.nodes_explored);
      EXPECT_EQ(reference->evaluations, r.evaluations);
    }
  }
  EXPECT_EQ(reference->nodes_explored,
            static_cast<std::uint64_t>(opts.annealing.iterations) * opts.restarts);
}

TEST(AnnealingPortfolio, EqualsIndexOrderedBestOfManualRestarts) {
  const auto g = small_graph(22, 9);
  const double d = mid_deadline(g);
  AnnealingPortfolioOptions opts;
  opts.annealing.iterations = 1000;
  opts.annealing.seed = 4;
  opts.restarts = 4;
  analysis::Executor executor(2);
  const auto portfolio = schedule_annealing_portfolio(g, d, kModel, executor, opts);
  ScheduleResult manual_best;
  for (std::size_t k = 0; k < opts.restarts; ++k) {
    AnnealingOptions per = opts.annealing;
    per.seed = util::derive_seed(opts.annealing.seed, k);
    const auto r = schedule_annealing(g, d, kModel, per);
    if (r.feasible && (!manual_best.feasible || r.sigma < manual_best.sigma)) manual_best = r;
  }
  ASSERT_EQ(portfolio.feasible, manual_best.feasible);
  if (portfolio.feasible) {
    EXPECT_EQ(portfolio.sigma, manual_best.sigma);
    EXPECT_EQ(portfolio.schedule.sequence, manual_best.schedule.sequence);
    EXPECT_EQ(portfolio.schedule.assignment, manual_best.schedule.assignment);
  }
}

TEST(AnnealingPortfolio, SegmentReversalConfigPropagates) {
  const auto g = small_graph(23, 10);
  const double d = mid_deadline(g);
  AnnealingPortfolioOptions opts;
  opts.annealing.iterations = 1200;
  opts.annealing.segment_reversal = true;
  opts.restarts = 3;
  analysis::Executor executor(2);
  const auto a = schedule_annealing_portfolio(g, d, kModel, executor, opts);
  const auto b = schedule_annealing_portfolio(g, d, kModel, executor, opts);
  ASSERT_TRUE(a.feasible) << a.error;
  expect_same_payload(a, b);
}

TEST(AnnealingPortfolio, Validation) {
  const auto g = graph::make_g2();
  analysis::Executor executor(1);
  AnnealingPortfolioOptions opts;
  opts.restarts = 0;
  EXPECT_THROW((void)schedule_annealing_portfolio(g, 75.0, kModel, executor, opts),
               std::invalid_argument);
}

TEST(RandomPortfolio, ByteIdenticalAcrossJobs) {
  const auto g = small_graph(31, 10);
  const double d = mid_deadline(g);
  RandomPortfolioOptions opts;
  opts.search.samples = 300;
  opts.search.seed = 2;
  opts.restarts = 6;
  std::optional<ScheduleResult> reference;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    analysis::Executor executor(jobs);
    const auto r = schedule_random_search_portfolio(g, d, kModel, executor, opts);
    ASSERT_TRUE(r.feasible) << r.error;
    if (!reference) {
      reference = r;
    } else {
      expect_same_payload(*reference, r);
      EXPECT_EQ(reference->evaluations, r.evaluations);
    }
  }
  EXPECT_EQ(reference->nodes_explored,
            static_cast<std::uint64_t>(opts.search.samples) * opts.restarts);
}

TEST(RandomPortfolio, NeverWorseThanSingleShard) {
  const auto g = small_graph(32, 9);
  const double d = mid_deadline(g);
  RandomPortfolioOptions opts;
  opts.search.samples = 200;
  opts.restarts = 5;
  analysis::Executor executor(2);
  const auto portfolio = schedule_random_search_portfolio(g, d, kModel, executor, opts);
  RandomSearchOptions single = opts.search;
  single.seed = util::derive_seed(opts.search.seed, 0);
  const auto shard = schedule_random_search(g, d, kModel, single);
  if (shard.feasible) {
    ASSERT_TRUE(portfolio.feasible);
    EXPECT_LE(portfolio.sigma, shard.sigma + 1e-12);
  }
}

}  // namespace
}  // namespace basched::baselines
