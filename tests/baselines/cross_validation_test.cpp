/// Cross-checks all schedulers against each other and against the exhaustive
/// optimum on small random instances.
#include <gtest/gtest.h>

#include "basched/baselines/annealing.hpp"
#include "basched/baselines/chowdhury.hpp"
#include "basched/baselines/exhaustive.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph small_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  switch (seed % 3) {
    case 0:
      return graph::make_chain(5, synth, rng);
    case 1:
      return graph::make_series_parallel(6, synth, rng);
    default:
      return graph::make_layered_random(3, 2, 0.4, synth, rng);
  }
}

double mid_deadline(const graph::TaskGraph& g) {
  const double fast = g.column_time(0);
  const double slow = g.column_time(g.num_design_points() - 1);
  return fast + 0.6 * (slow - fast);
}

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidation, NoHeuristicBeatsExhaustiveOptimum) {
  const auto g = small_graph(GetParam());
  const double d = mid_deadline(g);
  const auto opt = schedule_exhaustive(g, d, kModel);
  ASSERT_TRUE(opt.has_value() && opt->feasible);

  const auto ours = core::schedule_battery_aware(g, d, kModel);
  ASSERT_TRUE(ours.feasible);
  EXPECT_GE(ours.sigma, opt->sigma - 1e-6);

  const auto dp = schedule_rv_dp(g, d, kModel);
  ASSERT_TRUE(dp.feasible);
  EXPECT_GE(dp.sigma, opt->sigma - 1e-6);

  const auto ch = schedule_chowdhury(g, d, kModel);
  if (ch.feasible) { EXPECT_GE(ch.sigma, opt->sigma - 1e-6); }

  AnnealingOptions aopts;
  aopts.iterations = 3000;
  const auto sa = schedule_annealing(g, d, kModel, aopts);
  if (sa.feasible) { EXPECT_GE(sa.sigma, opt->sigma - 1e-6); }

  RandomSearchOptions ropts;
  ropts.samples = 500;
  const auto rnd = schedule_random_search(g, d, kModel, ropts);
  if (rnd.feasible) { EXPECT_GE(rnd.sigma, opt->sigma - 1e-6); }
}

TEST_P(CrossValidation, OursWithinModestFactorOfOptimum) {
  // Quality guard: the iterative heuristic should stay within 30% of the
  // exhaustive optimum on these small instances.
  const auto g = small_graph(GetParam());
  const double d = mid_deadline(g);
  const auto opt = schedule_exhaustive(g, d, kModel);
  ASSERT_TRUE(opt.has_value() && opt->feasible);
  const auto ours = core::schedule_battery_aware(g, d, kModel);
  ASSERT_TRUE(ours.feasible);
  EXPECT_LE(ours.sigma, opt->sigma * 1.30);
}

TEST_P(CrossValidation, EveryFeasibleResultRespectsDeadline) {
  const auto g = small_graph(GetParam());
  const double d = mid_deadline(g);
  const double tol = d * (1.0 + 1e-9);
  const auto ours = core::schedule_battery_aware(g, d, kModel);
  if (ours.feasible) { EXPECT_LE(ours.duration, tol); }
  for (const auto& r : {schedule_rv_dp(g, d, kModel), schedule_chowdhury(g, d, kModel),
                        schedule_random_search(g, d, kModel)}) {
    if (r.feasible) {
      EXPECT_LE(r.duration, tol);
      EXPECT_TRUE(r.schedule.is_valid(g));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace basched::baselines
