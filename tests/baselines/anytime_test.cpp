/// Anytime-search contract across every search entry point: with a deadline
/// or a fired StopToken each returns its best incumbent and says why it
/// stopped; with no budget the results (and trajectories) are bit-identical
/// to an unbudgeted run at any job count — adding the deadline layer must
/// not move a single byte on the default path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "basched/analysis/executor.hpp"
#include "basched/baselines/annealing.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/exhaustive.hpp"
#include "basched/baselines/parallel.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/rng.hpp"
#include "basched/util/stop.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph test_graph(std::size_t tasks, std::uint64_t seed = 3) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::make_series_parallel(tasks, synth, rng);
}

util::StopToken fired_token() {
  util::StopSource source;
  source.request_stop();
  return source.token();
}

// With a loose deadline every algorithm's initial incumbent is feasible, so
// even an immediately-cancelled run must hand back a usable schedule.
void expect_valid_incumbent(const ScheduleResult& r, const graph::TaskGraph& g,
                            double deadline) {
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(std::isnan(r.sigma));
  EXPECT_LE(r.schedule.duration(g), deadline * (1.0 + 1e-9));
}

// ---- cancelled: a pre-fired token stops every entry point at once --------

TEST(Anytime, AnnealingReturnsIncumbentWhenCancelled) {
  const auto g = test_graph(8);
  AnnealingOptions opts;
  opts.stop = fired_token();
  const auto r = schedule_annealing(g, 200.0, kModel, opts);
  EXPECT_EQ(r.stop_reason, util::StopReason::cancelled);
  EXPECT_TRUE(r.truncated());
  EXPECT_EQ(r.nodes_explored, 0u);  // stopped before the first move
  expect_valid_incumbent(r, g, 200.0);
}

TEST(Anytime, RandomSearchReportsCancelledBeforeFirstSample) {
  // Random search has no seeded incumbent: the budget is checked before any
  // sample is drawn, so an already-fired token yields an *honest* empty
  // result — infeasible, zero samples, reason `cancelled` — never a crash.
  const auto g = test_graph(8);
  RandomSearchOptions opts;
  opts.stop = fired_token();
  const auto r = schedule_random_search(g, 200.0, kModel, opts);
  EXPECT_EQ(r.stop_reason, util::StopReason::cancelled);
  EXPECT_EQ(r.nodes_explored, 0u);  // no sample drawn after the trip
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.error.empty());
}

TEST(Anytime, BranchAndBoundReturnsIncumbentWhenCancelled) {
  const auto g = test_graph(8);
  BnbOptions opts;
  opts.stop = fired_token();
  const auto r = schedule_branch_and_bound(g, 200.0, kModel, opts);
  EXPECT_EQ(r.stop_reason, util::StopReason::cancelled);
  // seed_with_heuristic hands bnb a feasible incumbent before the walk.
  expect_valid_incumbent(r, g, 200.0);
}

TEST(Anytime, ExhaustiveReportsCancelled) {
  const auto g = test_graph(6);
  ExhaustiveOptions opts;
  opts.stop = fired_token();
  const auto r = schedule_exhaustive(g, 200.0, kModel, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->stop_reason, util::StopReason::cancelled);
  EXPECT_TRUE(r->truncated());
  // Exhaustive has no seeded incumbent: an immediate stop may yield an
  // infeasible result, but it must say so rather than crash or hang.
  if (!r->feasible) {
    EXPECT_NE(r->error.find("budget"), std::string::npos) << r->error;
  }
}

TEST(Anytime, ParallelBnbReturnsIncumbentWhenCancelled) {
  const auto g = test_graph(10);
  analysis::Executor executor(4);
  ParallelBnbOptions opts;
  opts.base.stop = fired_token();
  const auto r = schedule_branch_and_bound_parallel(g, 200.0, kModel, executor, opts);
  EXPECT_EQ(r.stop_reason, util::StopReason::cancelled);
  expect_valid_incumbent(r, g, 200.0);
}

TEST(Anytime, PortfoliosPropagateCancellation) {
  const auto g = test_graph(8);
  analysis::Executor executor(2);

  AnnealingPortfolioOptions ap;
  ap.annealing.stop = fired_token();
  ap.restarts = 4;
  const auto a = schedule_annealing_portfolio(g, 200.0, kModel, executor, ap);
  EXPECT_EQ(a.stop_reason, util::StopReason::cancelled);
  expect_valid_incumbent(a, g, 200.0);

  // Every random shard stops before its first sample (no seeded incumbent),
  // so the reduction must report an honest infeasible + cancelled result.
  RandomPortfolioOptions rp;
  rp.search.stop = fired_token();
  rp.restarts = 4;
  const auto r = schedule_random_search_portfolio(g, 200.0, kModel, executor, rp);
  EXPECT_EQ(r.stop_reason, util::StopReason::cancelled);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.error.empty());
}

// ---- deadline: an expired clock stops with reason `deadline` -------------

TEST(Anytime, AnnealingStopsOnExpiredDeadline) {
  const auto g = test_graph(8);
  AnnealingOptions opts;
  opts.iterations = 50'000'000;  // would run ~minutes unbudgeted
  opts.time_budget = util::Deadline::after_ms(30);
  const auto r = schedule_annealing(g, 200.0, kModel, opts);
  EXPECT_EQ(r.stop_reason, util::StopReason::deadline);
  EXPECT_LT(r.nodes_explored, 50'000'000u);
  expect_valid_incumbent(r, g, 200.0);
}

TEST(Anytime, RandomSearchStopsOnExpiredDeadline) {
  const auto g = test_graph(8);
  RandomSearchOptions opts;
  opts.samples = 50'000'000;
  opts.time_budget = util::Deadline::after_ms(30);
  const auto r = schedule_random_search(g, 200.0, kModel, opts);
  EXPECT_EQ(r.stop_reason, util::StopReason::deadline);
  EXPECT_LT(r.nodes_explored, 50'000'000u);
  expect_valid_incumbent(r, g, 200.0);
}

TEST(Anytime, BranchAndBoundStopsOnExpiredDeadline) {
  const auto g = test_graph(16);  // tree far too big to finish in 30ms
  BnbOptions opts;
  opts.max_nodes = UINT64_MAX;
  opts.time_budget = util::Deadline::after_ms(30);
  const auto r = schedule_branch_and_bound(g, 200.0, kModel, opts);
  EXPECT_EQ(r.stop_reason, util::StopReason::deadline);
  expect_valid_incumbent(r, g, 200.0);
}

TEST(Anytime, NodeBudgetStillReportsNodeBudget) {
  // The old truncation path keeps its identity: a node-budget trip is
  // node_budget, never deadline, even when a (generous) deadline is armed.
  const auto g = test_graph(12);
  BnbOptions opts;
  opts.max_nodes = 50;
  opts.time_budget = util::Deadline::after_ms(60'000);
  const auto r = schedule_branch_and_bound(g, 200.0, kModel, opts);
  EXPECT_EQ(r.stop_reason, util::StopReason::node_budget);
  EXPECT_TRUE(r.truncated());
}

// ---- no budget: byte-identity with the pre-deadline behavior -------------

void expect_identical(const ScheduleResult& a, const ScheduleResult& b) {
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.sigma, b.sigma);  // bitwise
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.schedule.assignment, b.schedule.assignment);
  EXPECT_EQ(a.nodes_explored, b.nodes_explored);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
}

TEST(Anytime, InertBudgetIsBitIdenticalAcrossJobCounts) {
  const auto g = test_graph(9, 11);
  const double deadline = 60.0;

  // Default options vs. explicitly-inert budget: the RunBudget must be
  // pure observation — no RNG draws, no trajectory perturbation.
  AnnealingOptions aopts;
  aopts.seed = 5;
  AnnealingOptions aopts_inert = aopts;
  aopts_inert.stop = util::StopToken();
  aopts_inert.time_budget = util::Deadline::never();
  expect_identical(schedule_annealing(g, deadline, kModel, aopts),
                   schedule_annealing(g, deadline, kModel, aopts_inert));

  RandomSearchOptions ropts;
  ropts.seed = 5;
  expect_identical(schedule_random_search(g, deadline, kModel, ropts),
                   schedule_random_search(g, deadline, kModel, ropts));

  const auto serial = schedule_branch_and_bound(g, deadline, kModel);
  for (const unsigned jobs : {1u, 2u, 8u}) {
    analysis::Executor executor(jobs);
    ParallelBnbOptions popts;
    const auto parallel = schedule_branch_and_bound_parallel(g, deadline, kModel, executor, popts);
    expect_identical(serial, parallel);

    AnnealingPortfolioOptions ap;
    ap.annealing = aopts;
    ap.restarts = 4;
    const auto pa = schedule_annealing_portfolio(g, deadline, kModel, executor, ap);
    analysis::Executor one(1);
    expect_identical(pa, schedule_annealing_portfolio(g, deadline, kModel, one, ap));
  }
}

TEST(Anytime, CompletedRunsReportCompleted) {
  const auto g = test_graph(6);
  AnnealingOptions opts;
  opts.iterations = 500;
  EXPECT_EQ(schedule_annealing(g, 200.0, kModel, opts).stop_reason,
            util::StopReason::completed);
  EXPECT_EQ(schedule_branch_and_bound(g, 200.0, kModel).stop_reason,
            util::StopReason::completed);
  EXPECT_FALSE(schedule_branch_and_bound(g, 200.0, kModel).truncated());
}

}  // namespace
}  // namespace basched::baselines
