#include "basched/baselines/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/baselines/exhaustive.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

graph::TaskGraph small_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::make_series_parallel(6, synth, rng);
}

double mid_deadline(const graph::TaskGraph& g) {
  return g.column_time(0) +
         0.6 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));
}

class BnbVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbVsExhaustive, MatchesExhaustiveOptimum) {
  const auto g = small_graph(GetParam());
  const double d = mid_deadline(g);
  const auto exhaustive = schedule_exhaustive(g, d, kModel);
  const auto bnb = schedule_branch_and_bound(g, d, kModel);
  ASSERT_TRUE(exhaustive.has_value());
  EXPECT_FALSE(bnb.truncated());
  ASSERT_EQ(exhaustive->feasible, bnb.feasible);
  if (exhaustive->feasible) { EXPECT_NEAR(bnb.sigma, exhaustive->sigma, 1e-6); }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbVsExhaustive, ::testing::Range<std::uint64_t>(1, 9));

TEST(Bnb, NeverWorseThanHeuristicSeed) {
  const auto g = graph::make_g2();
  const auto bnb = schedule_branch_and_bound(g, 75.0, kModel);
  ASSERT_TRUE(bnb.feasible);
  const auto ours = core::schedule_battery_aware(g, 75.0, kModel);
  ASSERT_TRUE(ours.feasible);
  EXPECT_LE(bnb.sigma, ours.sigma + 1e-9);
  EXPECT_LE(bnb.duration, 75.0 + 1e-9);
}

TEST(Bnb, HandlesGraphsBeyondExhaustiveReach) {
  // 10 tasks × 3 points: 3^10 ≈ 59k assignments per order, too many orders
  // for the exhaustive limits used in tests, but fine for BnB.
  util::Rng rng(77);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  const auto g = graph::make_series_parallel(10, synth, rng);
  const double d = mid_deadline(g);
  const auto bnb = schedule_branch_and_bound(g, d, kModel);
  ASSERT_TRUE(bnb.feasible);
  const auto ours = core::schedule_battery_aware(g, d, kModel);
  ASSERT_TRUE(ours.feasible);
  EXPECT_LE(bnb.sigma, ours.sigma + 1e-9);
}

TEST(Bnb, NodeLimitReportedAsTruncated) {
  util::Rng rng(5);
  graph::DesignPointSynthesis synth;
  synth.num_points = 4;
  const auto g = graph::make_independent(9, synth, rng);
  BnbOptions opts;
  opts.max_nodes = 50;
  opts.seed_with_heuristic = false;
  const auto r = schedule_branch_and_bound(g, 1e6, kModel, opts);
  EXPECT_TRUE(r.truncated());  // budget tripped: best-found, not proven — reported, never silent
  if (!r.feasible) {
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(Bnb, TruncatedSeededRunStillReturnsSeedIncumbent) {
  // With the heuristic seed the budget-tripped run has an incumbent to
  // return: feasible best-found, flagged truncated.
  const auto g = small_graph(6);
  BnbOptions opts;
  opts.max_nodes = 1;
  const auto r = schedule_branch_and_bound(g, mid_deadline(g), kModel, opts);
  EXPECT_TRUE(r.truncated());
  ASSERT_TRUE(r.feasible);
  const auto seed = core::schedule_battery_aware(g, mid_deadline(g), kModel);
  ASSERT_TRUE(seed.feasible);
  EXPECT_LE(r.sigma, seed.sigma + 1e-9);
}

TEST(Bnb, UnmeetableDeadlineReported) {
  const auto g = graph::make_g3();
  const auto bnb = schedule_branch_and_bound(g, 50.0, kModel);
  EXPECT_FALSE(bnb.feasible);
  EXPECT_FALSE(bnb.truncated());
  EXPECT_FALSE(bnb.error.empty());
}

TEST(Bnb, StatsReportPruning) {
  const auto g = small_graph(3);
  BnbStats stats;
  const auto bnb = schedule_branch_and_bound(g, mid_deadline(g), kModel, {}, &stats);
  ASSERT_TRUE(bnb.feasible);
  EXPECT_GT(stats.nodes_visited, 0u);
  // The heuristic seed makes the σ bound bite on any nontrivial instance.
  EXPECT_GT(stats.pruned_sigma + stats.pruned_deadline, 0u);
}

TEST(Bnb, SeedingOnlyChangesSpeedNotResult) {
  const auto g = small_graph(4);
  const double d = mid_deadline(g);
  BnbOptions unseeded;
  unseeded.seed_with_heuristic = false;
  const auto a = schedule_branch_and_bound(g, d, kModel);
  const auto b = schedule_branch_and_bound(g, d, kModel, unseeded);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) { EXPECT_NEAR(a.sigma, b.sigma, 1e-9); }
}

TEST(Bnb, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)schedule_branch_and_bound(g, 0.0, kModel), std::invalid_argument);
  graph::TaskGraph empty;
  EXPECT_THROW((void)schedule_branch_and_bound(empty, 10.0, kModel), std::invalid_argument);
}

}  // namespace
}  // namespace basched::baselines
