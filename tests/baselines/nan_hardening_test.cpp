/// Regression tests for NaN-σ poisoning (ISSUE 6 satellite): a degenerate
/// battery model whose σ evaluates to NaN used to silently disable every
/// incumbent comparison — NaN compares false against everything, so it never
/// became the incumbent, never tightened the shared bound (parallel B&B ran
/// unpruned with no signal), and the first NaN "feasible" portfolio member
/// stuck forever in the best-of reduction. Every search entry point must now
/// detect NaN at result publication and return an explicit error result.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <string>

#include "basched/analysis/executor.hpp"
#include "basched/baselines/annealing.hpp"
#include "basched/baselines/branch_and_bound.hpp"
#include "basched/baselines/parallel.hpp"
#include "basched/baselines/random_search.hpp"
#include "basched/battery/model.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {
namespace {

/// Minimal degenerate model: every σ query is NaN. Uses the evaluator's
/// generic fallback path, exactly like a real model gone numerically bad
/// (e.g. parameters that overflow into inf - inf inside its series).
class NanModel final : public battery::BatteryModel {
 public:
  [[nodiscard]] std::string name() const override { return "nan"; }
  [[nodiscard]] double charge_lost(std::span<const battery::DischargeInterval>,
                                   double) const override {
    return std::numeric_limits<double>::quiet_NaN();
  }
};

graph::TaskGraph small_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  return graph::make_series_parallel(6, synth, rng);
}

// A deadline every schedule meets, so the NaN path (not infeasibility) is
// what the search exercises.
constexpr double kLooseDeadline = 1e9;

void expect_nan_error(const ScheduleResult& r) {
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.error.find("NaN"), std::string::npos) << r.error;
  EXPECT_FALSE(std::isnan(r.sigma));  // the NaN must not leak into the payload
}

TEST(NanHardening, SequentialBnbReturnsExplicitError) {
  const NanModel model;
  const auto g = small_graph(1);
  for (const bool seeded : {true, false}) {
    BnbOptions opts;
    opts.seed_with_heuristic = seeded;
    BnbStats stats;
    const auto r = schedule_branch_and_bound(g, kLooseDeadline, model, opts, &stats);
    expect_nan_error(r);
    // The walk must stop at the first NaN leaf instead of enumerating the
    // whole tree unpruned: a 6-task × 3-point tree has far more nodes.
    EXPECT_LT(stats.nodes_visited, 100u) << (seeded ? "seeded" : "unseeded");
  }
}

TEST(NanHardening, ParallelBnbReturnsExplicitError) {
  const NanModel model;
  const auto g = small_graph(2);
  for (const unsigned jobs : {1u, 2u}) {
    analysis::Executor executor(jobs);
    for (const bool seeded : {true, false}) {
      ParallelBnbOptions opts;
      opts.base.seed_with_heuristic = seeded;
      const auto r = schedule_branch_and_bound_parallel(g, kLooseDeadline, model, executor, opts);
      expect_nan_error(r);
    }
  }
}

TEST(NanHardening, AnnealingReturnsExplicitError) {
  const NanModel model;
  const auto g = small_graph(3);
  AnnealingOptions opts;
  opts.iterations = 200;
  expect_nan_error(schedule_annealing(g, kLooseDeadline, model, opts));
}

TEST(NanHardening, RandomSearchReturnsExplicitError) {
  const NanModel model;
  const auto g = small_graph(4);
  RandomSearchOptions ropts;
  ropts.seed = 1;
  ropts.samples = 50;
  expect_nan_error(schedule_random_search(g, kLooseDeadline, model, ropts));
}

TEST(NanHardening, PortfolioReductionSkipsNanMembers) {
  // Every member publishes only NaN candidates; the reduction must not let
  // the first one win `!best.feasible` and poison the merged result.
  const NanModel model;
  const auto g = small_graph(5);
  analysis::Executor executor(2);
  AnnealingPortfolioOptions aopts;
  aopts.annealing.iterations = 100;
  aopts.restarts = 3;
  expect_nan_error(schedule_annealing_portfolio(g, kLooseDeadline, model, executor, aopts));
  RandomPortfolioOptions ropts;
  ropts.search.samples = 50;
  ropts.restarts = 3;
  expect_nan_error(schedule_random_search_portfolio(g, kLooseDeadline, model, executor, ropts));
}

}  // namespace
}  // namespace basched::baselines
