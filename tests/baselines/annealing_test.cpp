#include "basched/baselines/annealing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/generators.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/util/fastmath.hpp"
#include "basched/util/rng.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

TEST(Annealing, FeasibleOnG2) {
  const auto g = graph::make_g2();
  AnnealingOptions opts;
  opts.iterations = 5000;
  const auto r = schedule_annealing(g, 75.0, kModel, opts);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(r.schedule.is_valid(g));
  EXPECT_LE(r.duration, 75.0 + 1e-6);
}

TEST(Annealing, DeterministicPerSeed) {
  const auto g = graph::make_g2();
  AnnealingOptions opts;
  opts.iterations = 2000;
  opts.seed = 99;
  const auto a = schedule_annealing(g, 75.0, kModel, opts);
  const auto b = schedule_annealing(g, 75.0, kModel, opts);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.schedule.assignment, b.schedule.assignment);
}

TEST(Annealing, SegmentReversalStaysFeasibleAndDeterministic) {
  // Move (c) is gated behind AnnealingOptions: with it on, runs remain
  // bit-deterministic per seed, results stay valid topological orders, and
  // the commit/rollback path never corrupts the evaluator (the returned
  // schedule is re-priced at reference precision, so a drifting evaluator
  // would show up as an infeasible or invalid result here).
  util::Rng rng(17);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  const auto g = graph::make_series_parallel(16, synth, rng);
  const double d =
      g.column_time(0) + 0.6 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));
  AnnealingOptions opts;
  opts.iterations = 4000;
  opts.seed = 5;
  opts.segment_reversal = true;
  const auto a = schedule_annealing(g, d, kModel, opts);
  const auto b = schedule_annealing(g, d, kModel, opts);
  ASSERT_TRUE(a.feasible) << a.error;
  EXPECT_TRUE(a.schedule.is_valid(g));
  EXPECT_LE(a.duration, d * (1.0 + 1e-9));
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.schedule.assignment, b.schedule.assignment);
  EXPECT_EQ(a.sigma, b.sigma);
}

TEST(Annealing, SegmentReversalOffByDefaultKeepsLegacyTrajectory) {
  const auto g = graph::make_g2();
  AnnealingOptions legacy;
  legacy.iterations = 1500;
  legacy.seed = 23;
  AnnealingOptions off = legacy;
  off.segment_reversal = false;  // explicit, == default
  const auto a = schedule_annealing(g, 75.0, kModel, legacy);
  const auto b = schedule_annealing(g, 75.0, kModel, off);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.sigma, b.sigma);
}

TEST(Annealing, MoreIterationsNeverHurt) {
  const auto g = graph::make_g2();
  AnnealingOptions small, large;
  small.iterations = 200;
  large.iterations = 20000;
  small.seed = large.seed = 7;
  const auto rs = schedule_annealing(g, 75.0, kModel, small);
  const auto rl = schedule_annealing(g, 75.0, kModel, large);
  ASSERT_TRUE(rs.feasible && rl.feasible);
  // Not guaranteed in general for SA, but with a shared seed the long run
  // replays the short run's prefix and keeps its best-so-far.
  EXPECT_LE(rl.sigma, rs.sigma + 1e-9);
}

TEST(Annealing, CommitPathStaysOTermsExpsPerIteration) {
  // The probe counterpart of PR 3's full_evaluations() tests, for the commit
  // path: one annealing run must spend O(terms) exp evaluations per
  // iteration — peeks cost a handful of decay rows each and *accepted* moves
  // rescale suffix rows against the warm per-Δt cache instead of paying
  // reprice_suffix's O(suffix · terms) exps. With n = 40 the old commit path
  // would average ~(n/2)·terms extra exps per accepted move and blow through
  // this bound by an order of magnitude.
  util::Rng rng(4242);
  graph::DesignPointSynthesis synth;
  synth.num_points = 4;
  const auto g = graph::make_series_parallel(40, synth, rng);
  const int terms = kModel.terms();
  AnnealingOptions opts;
  opts.iterations = 2000;
  opts.initial_temp = 1e6;  // hot: nearly every proposal is accepted

  const std::uint64_t before = util::fastmath::exp_evaluations();
  const auto r = schedule_annealing(g, 1e9, kModel, opts);
  const std::uint64_t spent = util::fastmath::exp_evaluations() - before;
  ASSERT_TRUE(r.feasible) << r.error;

  // Budget: <= 8·terms per iteration (a swap peek batches 4 decay rows, a
  // bump peek 3, commits ~0 on the warm cache) plus the one-off costs —
  // cache warm-up (catalog × terms), the initial full_eval and the final
  // canonical re-pricing (~2·n series terms of 2 exps each).
  const std::uint64_t budget =
      static_cast<std::uint64_t>(opts.iterations) * 8u * static_cast<std::uint64_t>(terms) +
      static_cast<std::uint64_t>(g.num_tasks() * g.num_design_points() + 4 * g.num_tasks()) *
          static_cast<std::uint64_t>(terms);
  EXPECT_LE(spent, budget);
}

TEST(Annealing, InfeasibleDeadline) {
  const auto g = graph::make_g3();
  AnnealingOptions opts;
  opts.iterations = 500;
  const auto r = schedule_annealing(g, 50.0, kModel, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.error.empty());
}

TEST(Annealing, SingleTaskGraph) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{400.0, 1.0}, {100.0, 2.0}}));
  AnnealingOptions opts;
  opts.iterations = 200;
  const auto r = schedule_annealing(g, 2.0, kModel, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.assignment[0], 1u);  // slow point fits and wins
}

TEST(Annealing, BlockWidthNeverChangesTheTrajectory) {
  // The block-speculation rewrite prices proposals K at a time but must
  // replay the *exact* legacy trajectory: for any block_proposals cap —
  // including 1, which disables speculation entirely — every field of the
  // result is bit-identical, under both exp kernels and with segment
  // reversal on and off. evaluations reports the sequential count, so it
  // may not drift with the cap either.
  util::Rng rng(31);
  graph::DesignPointSynthesis synth;
  synth.num_points = 3;
  const auto g = graph::make_series_parallel(14, synth, rng);
  const double d =
      g.column_time(0) + 0.6 * (g.column_time(g.num_design_points() - 1) - g.column_time(0));

  const auto saved_kernel = util::fastmath::exp_kernel();
  for (const auto kernel :
       {util::fastmath::ExpKernel::Batched, util::fastmath::ExpKernel::Scalar}) {
    util::fastmath::set_exp_kernel(kernel);
    for (const bool reversal : {false, true}) {
      AnnealingOptions base;
      base.iterations = 3000;
      base.seed = 77;
      base.segment_reversal = reversal;
      base.block_proposals = 1;
      const auto ref = schedule_annealing(g, d, kModel, base);
      ASSERT_TRUE(ref.feasible) << ref.error;
      for (const std::size_t cap : {std::size_t{2}, std::size_t{8}, std::size_t{64}}) {
        AnnealingOptions opts = base;
        opts.block_proposals = cap;
        const auto r = schedule_annealing(g, d, kModel, opts);
        ASSERT_TRUE(r.feasible) << r.error;
        EXPECT_EQ(r.sigma, ref.sigma) << "cap=" << cap << " reversal=" << reversal;
        EXPECT_EQ(r.duration, ref.duration) << "cap=" << cap;
        EXPECT_EQ(r.energy, ref.energy) << "cap=" << cap;
        EXPECT_EQ(r.schedule.sequence, ref.schedule.sequence) << "cap=" << cap;
        EXPECT_EQ(r.schedule.assignment, ref.schedule.assignment) << "cap=" << cap;
        EXPECT_EQ(r.evaluations, ref.evaluations) << "cap=" << cap;
      }
    }
  }
  util::fastmath::set_exp_kernel(saved_kernel);
}

TEST(Annealing, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)schedule_annealing(g, 0.0, kModel), std::invalid_argument);
  AnnealingOptions opts;
  opts.iterations = 0;
  EXPECT_THROW((void)schedule_annealing(g, 75.0, kModel, opts), std::invalid_argument);
}

}  // namespace
}  // namespace basched::baselines
