#include "basched/baselines/annealing.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

TEST(Annealing, FeasibleOnG2) {
  const auto g = graph::make_g2();
  AnnealingOptions opts;
  opts.iterations = 5000;
  const auto r = schedule_annealing(g, 75.0, kModel, opts);
  ASSERT_TRUE(r.feasible) << r.error;
  EXPECT_TRUE(r.schedule.is_valid(g));
  EXPECT_LE(r.duration, 75.0 + 1e-6);
}

TEST(Annealing, DeterministicPerSeed) {
  const auto g = graph::make_g2();
  AnnealingOptions opts;
  opts.iterations = 2000;
  opts.seed = 99;
  const auto a = schedule_annealing(g, 75.0, kModel, opts);
  const auto b = schedule_annealing(g, 75.0, kModel, opts);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_DOUBLE_EQ(a.sigma, b.sigma);
  EXPECT_EQ(a.schedule.sequence, b.schedule.sequence);
  EXPECT_EQ(a.schedule.assignment, b.schedule.assignment);
}

TEST(Annealing, MoreIterationsNeverHurt) {
  const auto g = graph::make_g2();
  AnnealingOptions small, large;
  small.iterations = 200;
  large.iterations = 20000;
  small.seed = large.seed = 7;
  const auto rs = schedule_annealing(g, 75.0, kModel, small);
  const auto rl = schedule_annealing(g, 75.0, kModel, large);
  ASSERT_TRUE(rs.feasible && rl.feasible);
  // Not guaranteed in general for SA, but with a shared seed the long run
  // replays the short run's prefix and keeps its best-so-far.
  EXPECT_LE(rl.sigma, rs.sigma + 1e-9);
}

TEST(Annealing, InfeasibleDeadline) {
  const auto g = graph::make_g3();
  AnnealingOptions opts;
  opts.iterations = 500;
  const auto r = schedule_annealing(g, 50.0, kModel, opts);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.error.empty());
}

TEST(Annealing, SingleTaskGraph) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{400.0, 1.0}, {100.0, 2.0}}));
  AnnealingOptions opts;
  opts.iterations = 200;
  const auto r = schedule_annealing(g, 2.0, kModel, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.assignment[0], 1u);  // slow point fits and wins
}

TEST(Annealing, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)schedule_annealing(g, 0.0, kModel), std::invalid_argument);
  AnnealingOptions opts;
  opts.iterations = 0;
  EXPECT_THROW((void)schedule_annealing(g, 75.0, kModel, opts), std::invalid_argument);
}

}  // namespace
}  // namespace basched::baselines
