#include "basched/baselines/chowdhury.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/graph/paper_graphs.hpp"

namespace basched::baselines {
namespace {

const battery::RakhmatovVrudhulaModel kModel(0.273);

TEST(Chowdhury, FeasibleOnPaperGraphs) {
  for (const auto& [g, deadlines] :
       {std::pair{graph::make_g2(), graph::kG2Deadlines},
        std::pair{graph::make_g3(), graph::kG3Deadlines}}) {
    for (double d : deadlines) {
      const auto r = schedule_chowdhury(g, d, kModel);
      ASSERT_TRUE(r.feasible) << "deadline " << d;
      EXPECT_TRUE(r.schedule.is_valid(g));
      EXPECT_LE(r.duration, d + 1e-6);
    }
  }
}

TEST(Chowdhury, InfeasibleDeadline) {
  const auto g = graph::make_g3();
  const auto r = schedule_chowdhury(g, 50.0, kModel);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.error.empty());
}

TEST(Chowdhury, GenerousDeadlineDownscalesEverything) {
  const auto g = graph::make_g3();
  const auto r = schedule_chowdhury(g, 10000.0, kModel);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.assignment,
            core::uniform_assignment(g, g.num_design_points() - 1));
}

TEST(Chowdhury, ExactFitKeepsEverythingFast) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{400.0, 2.0}, {100.0, 4.0}}));
  g.add_task(graph::Task("B", {{400.0, 2.0}, {100.0, 4.0}}));
  g.add_edge(0, 1);
  const auto r = schedule_chowdhury(g, 4.0, kModel);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.assignment, (core::Assignment{0, 0}));
}

TEST(Chowdhury, SlackGoesToLaterTaskFirst) {
  // One unit of slack, two identical tasks: [7] proves the later task should
  // take it, and the backward walk does exactly that.
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{400.0, 2.0}, {100.0, 4.0}}));
  g.add_task(graph::Task("B", {{400.0, 2.0}, {100.0, 4.0}}));
  g.add_edge(0, 1);
  const auto r = schedule_chowdhury(g, 6.0, kModel);
  ASSERT_TRUE(r.feasible);
  // Sequence is A then B; B (later) gets the slow point.
  EXPECT_EQ(r.schedule.assignment[0], 0u);
  EXPECT_EQ(r.schedule.assignment[1], 1u);
}

TEST(Chowdhury, PartialDownscaleUsesIntermediateColumns) {
  graph::TaskGraph g;
  g.add_task(graph::Task("A", {{800.0, 1.0}, {400.0, 2.0}, {100.0, 4.0}}));
  const auto r = schedule_chowdhury(g, 2.5, kModel);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.assignment[0], 1u);  // the middle point fits, slowest doesn't
}

TEST(Chowdhury, Validation) {
  const auto g = graph::make_g2();
  EXPECT_THROW((void)schedule_chowdhury(g, 0.0, kModel), std::invalid_argument);
  graph::TaskGraph empty;
  EXPECT_THROW((void)schedule_chowdhury(empty, 10.0, kModel), std::invalid_argument);
}

}  // namespace
}  // namespace basched::baselines
