#include "basched/graph/task_graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace basched::graph {
namespace {

Task simple_task(const std::string& name, double i = 100.0, double d = 1.0) {
  return Task(name, {{i, d}, {i / 4.0, d * 2.0}});
}

TEST(TaskGraph, AddTaskReturnsSequentialIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(simple_task("A")), 0u);
  EXPECT_EQ(g.add_task(simple_task("B")), 1u);
  EXPECT_EQ(g.num_tasks(), 2u);
}

TEST(TaskGraph, UniformDesignPointCountEnforced) {
  TaskGraph g;
  g.add_task(simple_task("A"));  // m = 2
  EXPECT_THROW(g.add_task(Task("B", {{1.0, 1.0}})), std::invalid_argument);
  EXPECT_EQ(g.num_design_points(), 2u);
}

TEST(TaskGraph, DuplicateNameThrows) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  EXPECT_THROW(g.add_task(simple_task("A")), std::invalid_argument);
}

TEST(TaskGraph, EdgesAndAdjacency) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  g.add_task(simple_task("B"));
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  ASSERT_EQ(g.successors(0).size(), 1u);
  EXPECT_EQ(g.successors(0)[0], 1u);
  ASSERT_EQ(g.predecessors(1).size(), 1u);
  EXPECT_EQ(g.predecessors(1)[0], 0u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(TaskGraph, SelfLoopThrows) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
}

TEST(TaskGraph, DuplicateEdgeThrows) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  g.add_task(simple_task("B"));
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
}

TEST(TaskGraph, OutOfRangeEdgeThrows) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  EXPECT_THROW(g.add_edge(0, 5), std::invalid_argument);
  EXPECT_THROW(g.add_edge(5, 0), std::invalid_argument);
}

TEST(TaskGraph, AcyclicDetection) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  g.add_task(simple_task("B"));
  g.add_task(simple_task("C"));
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(2, 0);  // closes a cycle
  EXPECT_FALSE(g.is_acyclic());
}

TEST(TaskGraph, ValidateThrowsOnCycle) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  g.add_task(simple_task("B"));
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(TaskGraph, ValidateThrowsOnEmpty) {
  TaskGraph g;
  EXPECT_THROW(g.validate(), std::invalid_argument);
  EXPECT_TRUE(g.is_acyclic());  // vacuously
}

TEST(TaskGraph, TaskByName) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  g.add_task(simple_task("B"));
  EXPECT_EQ(g.task_by_name("B"), 1u);
  EXPECT_THROW((void)g.task_by_name("Z"), std::invalid_argument);
}

TEST(TaskGraph, ColumnTime) {
  TaskGraph g;
  g.add_task(Task("A", {{200.0, 1.0}, {50.0, 3.0}}));
  g.add_task(Task("B", {{200.0, 2.0}, {50.0, 5.0}}));
  EXPECT_DOUBLE_EQ(g.column_time(0), 3.0);
  EXPECT_DOUBLE_EQ(g.column_time(1), 8.0);
  EXPECT_THROW((void)g.column_time(2), std::out_of_range);
}

TEST(TaskGraph, CurrentExtremes) {
  TaskGraph g;
  g.add_task(Task("A", {{900.0, 1.0}, {30.0, 3.0}}));
  g.add_task(Task("B", {{500.0, 1.0}, {10.0, 3.0}}));
  EXPECT_DOUBLE_EQ(g.max_current_overall(), 900.0);
  EXPECT_DOUBLE_EQ(g.min_current_overall(), 10.0);
}

TEST(TaskGraph, EnergyExtremes) {
  TaskGraph g;
  g.add_task(Task("A", {{900.0, 1.0}, {30.0, 3.0}}));   // fast 900, slow 90
  g.add_task(Task("B", {{500.0, 2.0}, {10.0, 5.0}}));   // fast 1000, slow 50
  EXPECT_DOUBLE_EQ(g.max_total_energy(), 1900.0);
  EXPECT_DOUBLE_EQ(g.min_total_energy(), 140.0);
}

TEST(TaskGraph, TaskAccessBoundsChecked) {
  TaskGraph g;
  g.add_task(simple_task("A"));
  EXPECT_THROW((void)g.task(1), std::out_of_range);
}

}  // namespace
}  // namespace basched::graph
