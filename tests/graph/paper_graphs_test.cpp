/// Checks that the built-in G2/G3 graphs match the paper's published data
/// (Table 1 and Figure 5) and the structural facts the paper states.
#include "basched/graph/paper_graphs.hpp"

#include <gtest/gtest.h>

#include "basched/graph/topology.hpp"

namespace basched::graph {
namespace {

TEST(G3, Shape) {
  const auto g = make_g3();
  EXPECT_EQ(g.num_tasks(), 15u);          // "G3: 15 Nodes"
  EXPECT_EQ(g.num_design_points(), 5u);   // "5 DPs"
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(num_sources(g), 1u);  // fork-join: T1 is the unique source
  EXPECT_EQ(num_sinks(g), 1u);    // T15 is the unique sink
}

TEST(G3, Table1SpotValues) {
  const auto g = make_g3();
  // T1 row.
  EXPECT_DOUBLE_EQ(g.task(0).point(0).current, 917.0);
  EXPECT_DOUBLE_EQ(g.task(0).point(0).duration, 7.3);
  EXPECT_DOUBLE_EQ(g.task(0).point(4).current, 33.0);
  EXPECT_DOUBLE_EQ(g.task(0).point(4).duration, 22.0);
  // T8 row, middle design-point.
  EXPECT_DOUBLE_EQ(g.task(7).point(2).current, 189.0);
  EXPECT_DOUBLE_EQ(g.task(7).point(2).duration, 10.9);
  // T15 row.
  EXPECT_DOUBLE_EQ(g.task(14).point(0).current, 380.0);
  EXPECT_DOUBLE_EQ(g.task(14).point(4).duration, 10.0);
}

TEST(G3, ParentsColumn) {
  const auto g = make_g3();
  auto id = [&](const char* name) { return g.task_by_name(name); };
  // Exactly the "Parents" column of Table 1.
  EXPECT_TRUE(g.has_edge(id("T1"), id("T2")));
  EXPECT_TRUE(g.has_edge(id("T1"), id("T3")));
  EXPECT_TRUE(g.has_edge(id("T1"), id("T4")));
  EXPECT_TRUE(g.has_edge(id("T1"), id("T5")));
  EXPECT_TRUE(g.has_edge(id("T2"), id("T6")));
  EXPECT_TRUE(g.has_edge(id("T3"), id("T6")));
  EXPECT_TRUE(g.has_edge(id("T4"), id("T7")));
  EXPECT_TRUE(g.has_edge(id("T5"), id("T7")));
  EXPECT_TRUE(g.has_edge(id("T6"), id("T8")));
  EXPECT_TRUE(g.has_edge(id("T7"), id("T8")));
  EXPECT_TRUE(g.has_edge(id("T8"), id("T9")));
  EXPECT_TRUE(g.has_edge(id("T8"), id("T10")));
  EXPECT_TRUE(g.has_edge(id("T9"), id("T11")));
  EXPECT_TRUE(g.has_edge(id("T10"), id("T12")));
  EXPECT_TRUE(g.has_edge(id("T9"), id("T13")));
  EXPECT_TRUE(g.has_edge(id("T11"), id("T14")));
  EXPECT_TRUE(g.has_edge(id("T12"), id("T14")));
  EXPECT_TRUE(g.has_edge(id("T13"), id("T14")));
  EXPECT_TRUE(g.has_edge(id("T14"), id("T15")));
  EXPECT_EQ(g.num_edges(), 19u);
}

TEST(G3, CanonicalDesignPointOrdering) {
  const auto g = make_g3();
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto& t = g.task(v);
    for (std::size_t j = 1; j < t.num_points(); ++j) {
      EXPECT_LT(t.point(j - 1).duration, t.point(j).duration);
      EXPECT_GT(t.point(j - 1).current, t.point(j).current);
    }
  }
}

TEST(G3, ColumnTimesBracketTheExampleDeadline) {
  // CT(5) = 258 > 230 and CT(4) = 219.3 <= 230 — so the paper's window sweep
  // starts at WindowStart = 4 and evaluates exactly windows 4:5 … 1:5.
  const auto g = make_g3();
  EXPECT_NEAR(g.column_time(4), 258.0, 0.01);
  EXPECT_NEAR(g.column_time(3), 219.3, 0.01);
  EXPECT_GT(g.column_time(4), kG3ExampleDeadline);
  EXPECT_LT(g.column_time(3), kG3ExampleDeadline);
}

TEST(G3, AllDeadlinesOfTable4AreFeasibleAtColumn0) {
  const auto g = make_g3();
  for (double d : kG3Deadlines) EXPECT_LE(g.column_time(0), d);
}

TEST(G2, Shape) {
  const auto g = make_g2();
  EXPECT_EQ(g.num_tasks(), 9u);          // "G2: 9 Nodes"
  EXPECT_EQ(g.num_design_points(), 4u);  // "4 DPs"
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(num_sources(g), 1u);
}

TEST(G2, Figure5SpotValues) {
  const auto g = make_g2();
  EXPECT_DOUBLE_EQ(g.task(0).point(0).current, 938.0);
  EXPECT_DOUBLE_EQ(g.task(0).point(3).duration, 22.0);
  EXPECT_DOUBLE_EQ(g.task(1).point(0).duration, 1.2);
  EXPECT_DOUBLE_EQ(g.task(8).point(3).current, 34.0);
  EXPECT_DOUBLE_EQ(g.task(4).point(2).duration, 13.0);
}

TEST(G2, ReconstructedLayerStructure) {
  // Our reconstruction (DESIGN.md §5.1): 2 → {3,4} → 5 → 6 → 1 → 7 → {8,9}.
  const auto g = make_g2();
  const auto levels = asap_levels(g);
  EXPECT_EQ(levels[g.task_by_name("N2")], 0u);
  EXPECT_EQ(levels[g.task_by_name("N3")], 1u);
  EXPECT_EQ(levels[g.task_by_name("N4")], 1u);
  EXPECT_EQ(levels[g.task_by_name("N5")], 2u);
  EXPECT_EQ(levels[g.task_by_name("N6")], 3u);
  EXPECT_EQ(levels[g.task_by_name("N1")], 4u);
  EXPECT_EQ(levels[g.task_by_name("N7")], 5u);
  EXPECT_EQ(levels[g.task_by_name("N8")], 6u);
  EXPECT_EQ(levels[g.task_by_name("N9")], 6u);
}

TEST(G2, DeadlineFeasibilityBrackets) {
  const auto g = make_g2();
  // All-fastest fits every Table 4 deadline; all-slowest fits none.
  EXPECT_NEAR(g.column_time(0), 42.2, 0.01);
  EXPECT_NEAR(g.column_time(3), 105.8, 0.01);
  for (double d : kG2Deadlines) {
    EXPECT_LE(g.column_time(0), d);
    EXPECT_GT(g.column_time(3), d);
  }
}

TEST(G2, MatchesSpeedupRecipe) {
  // The paper generated G2 as D ∝ 1/s, I ∝ s³ with s = {2.5, 1.66, 1.25, 1}
  // relative to DP4. Verify every node against the recipe within rounding.
  const auto g = make_g2();
  const double s[4] = {2.5, 1.66, 1.25, 1.0};
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto& t = g.task(v);
    const double i_ref = t.point(3).current;
    const double d_ref = t.point(3).duration;
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(t.point(j).current, i_ref * s[j] * s[j] * s[j], i_ref * 0.12);
      EXPECT_NEAR(t.point(j).duration, d_ref / s[j], 0.1);
    }
  }
}

TEST(PaperConstants, MatchPaper) {
  EXPECT_DOUBLE_EQ(kPaperBeta, 0.273);
  EXPECT_DOUBLE_EQ(kG3ExampleDeadline, 230.0);
  EXPECT_EQ(kG2Deadlines.size(), 3u);
  EXPECT_EQ(kG3Deadlines.size(), 3u);
}

}  // namespace
}  // namespace basched::graph
