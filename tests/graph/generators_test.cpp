#include "basched/graph/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "basched/graph/topology.hpp"

namespace basched::graph {
namespace {

TEST(DvsSpeedup, FollowsCubeLaw) {
  const std::vector<double> s{2.5, 1.66, 1.25, 1.0};
  const auto pts = dvs_points_speedup(34.0, 8.8, s);
  ASSERT_EQ(pts.size(), 4u);
  for (std::size_t j = 0; j < s.size(); ++j) {
    EXPECT_NEAR(pts[j].current, 34.0 * std::pow(s[j], 3.0), 1e-9);
    EXPECT_NEAR(pts[j].duration, 8.8 / s[j], 1e-9);
  }
}

TEST(DvsSpeedup, ReproducesG2Node1) {
  // Figure 5 node 1: reference (DP4) I = 60 mA, D = 22 min; factors
  // {2.5, 1.66, 1.25, 1} relative to V4.
  const std::vector<double> s{2.5, 1.66, 1.25, 1.0};
  const auto pts = dvs_points_speedup(60.0, 22.0, s);
  EXPECT_NEAR(pts[0].current, 938.0, 1.0);   // 60 · 2.5³ = 937.5
  EXPECT_NEAR(pts[0].duration, 8.8, 0.01);   // 22 / 2.5
  EXPECT_NEAR(pts[1].current, 278.0, 4.0);   // 60 · 1.66³ ≈ 274.4 (paper rounds)
  EXPECT_NEAR(pts[1].duration, 13.2, 0.1);   // 22 / 1.66 ≈ 13.25
  EXPECT_NEAR(pts[2].current, 117.0, 0.2);   // 60 · 1.25³ = 117.2
  EXPECT_NEAR(pts[2].duration, 17.6, 0.01);
}

TEST(DvsSpeedup, Validation) {
  const std::vector<double> ok{1.5, 1.0};
  EXPECT_THROW((void)dvs_points_speedup(0.0, 1.0, ok), std::invalid_argument);
  EXPECT_THROW((void)dvs_points_speedup(1.0, 0.0, ok), std::invalid_argument);
  const std::vector<double> bad{0.9};
  EXPECT_THROW((void)dvs_points_speedup(1.0, 1.0, bad), std::invalid_argument);
  EXPECT_THROW((void)dvs_points_speedup(1.0, 1.0, std::vector<double>{}), std::invalid_argument);
}

TEST(DvsG3Style, ReproducesG3Task1) {
  // Table 1 T1: I_pk = 917, D_max = 22, factors {1, .85, .68, .51, .33}.
  const std::vector<double> s{1.0, 0.85, 0.68, 0.51, 0.33};
  const auto pts = dvs_points_g3_style(917.0, 22.0, s);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_NEAR(pts[0].current, 917.0, 1e-9);
  EXPECT_NEAR(pts[0].duration, 7.26, 0.01);   // 22 · 0.33
  EXPECT_NEAR(pts[1].current, 563.0, 1.0);    // 917 · 0.85³
  EXPECT_NEAR(pts[1].duration, 11.22, 0.01);  // 22 · 0.51
  EXPECT_NEAR(pts[2].current, 288.0, 1.0);    // 917 · 0.68³
  EXPECT_NEAR(pts[2].duration, 14.96, 0.01);  // 22 · 0.68
  EXPECT_NEAR(pts[3].current, 122.0, 1.0);    // 917 · 0.51³
  EXPECT_NEAR(pts[3].duration, 18.7, 0.01);   // 22 · 0.85
  EXPECT_NEAR(pts[4].current, 33.0, 0.5);     // 917 · 0.33³
  EXPECT_NEAR(pts[4].duration, 22.0, 1e-9);
}

TEST(DvsG3Style, Validation) {
  EXPECT_THROW((void)dvs_points_g3_style(1.0, 1.0, std::vector<double>{1.0, 1.2}),
               std::invalid_argument);
  EXPECT_THROW((void)dvs_points_g3_style(1.0, 1.0, std::vector<double>{0.5, 0.8}),
               std::invalid_argument);  // not descending
  EXPECT_THROW((void)dvs_points_g3_style(1.0, 1.0, std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
}

TEST(RandomDvsPoints, ProducesValidTask) {
  util::Rng rng(5);
  DesignPointSynthesis synth;
  synth.num_points = 5;
  const auto pts = random_dvs_points(synth, rng);
  ASSERT_EQ(pts.size(), 5u);
  // Must satisfy the canonical trade-off so Task accepts it.
  EXPECT_NO_THROW(Task("X", pts));
  for (std::size_t j = 1; j < pts.size(); ++j) {
    EXPECT_LT(pts[j - 1].duration, pts[j].duration);
    EXPECT_GT(pts[j - 1].current, pts[j].current);
  }
}

TEST(RandomDvsPoints, SinglePoint) {
  util::Rng rng(6);
  DesignPointSynthesis synth;
  synth.num_points = 1;
  EXPECT_EQ(random_dvs_points(synth, rng).size(), 1u);
}

TEST(Generators, Chain) {
  util::Rng rng(7);
  DesignPointSynthesis synth;
  const auto g = make_chain(5, synth, rng);
  EXPECT_EQ(g.num_tasks(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.is_acyclic());
  const auto orders = all_topological_orders(g, 10);
  ASSERT_TRUE(orders.has_value());
  EXPECT_EQ(orders->size(), 1u);  // a chain has exactly one order
}

TEST(Generators, Independent) {
  util::Rng rng(8);
  DesignPointSynthesis synth;
  const auto g = make_independent(4, synth, rng);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(num_sources(g), 4u);
}

TEST(Generators, ForkJoinShape) {
  util::Rng rng(9);
  DesignPointSynthesis synth;
  const auto g = make_fork_join(3, 4, synth, rng);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(num_sources(g), 1u);
  EXPECT_EQ(num_sinks(g), 1u);
  EXPECT_GE(g.num_tasks(), 1u + 3u * 3u);  // source + (>=2 branches + join) per stage
}

TEST(Generators, LayeredRandomConnected) {
  util::Rng rng(10);
  DesignPointSynthesis synth;
  const auto g = make_layered_random(5, 3, 0.4, synth, rng);
  EXPECT_TRUE(g.is_acyclic());
  // Every non-source task has at least one predecessor by construction.
  const auto levels = asap_levels(g);
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    if (levels[v] > 0) { EXPECT_FALSE(g.predecessors(v).empty()); }
}

TEST(Generators, SeriesParallelTaskCount) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    DesignPointSynthesis synth;
    const auto g = make_series_parallel(12, synth, rng);
    EXPECT_EQ(g.num_tasks(), 12u);
    EXPECT_TRUE(g.is_acyclic());
  }
}

TEST(Generators, Determinism) {
  DesignPointSynthesis synth;
  util::Rng a(42), b(42);
  const auto g1 = make_layered_random(4, 3, 0.3, synth, a);
  const auto g2 = make_layered_random(4, 3, 0.3, synth, b);
  ASSERT_EQ(g1.num_tasks(), g2.num_tasks());
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  for (TaskId v = 0; v < g1.num_tasks(); ++v) {
    EXPECT_DOUBLE_EQ(g1.task(v).point(0).current, g2.task(v).point(0).current);
    EXPECT_DOUBLE_EQ(g1.task(v).point(0).duration, g2.task(v).point(0).duration);
  }
}

TEST(Generators, InvalidArguments) {
  util::Rng rng(1);
  DesignPointSynthesis synth;
  EXPECT_THROW((void)make_chain(0, synth, rng), std::invalid_argument);
  EXPECT_THROW((void)make_independent(0, synth, rng), std::invalid_argument);
  EXPECT_THROW((void)make_fork_join(0, 3, synth, rng), std::invalid_argument);
  EXPECT_THROW((void)make_fork_join(2, 1, synth, rng), std::invalid_argument);
  EXPECT_THROW((void)make_layered_random(0, 3, 0.1, synth, rng), std::invalid_argument);
  EXPECT_THROW((void)make_layered_random(2, 0, 0.1, synth, rng), std::invalid_argument);
  EXPECT_THROW((void)make_layered_random(2, 2, 1.5, synth, rng), std::invalid_argument);
  EXPECT_THROW((void)make_series_parallel(0, synth, rng), std::invalid_argument);
  synth.num_points = 0;
  EXPECT_THROW((void)random_dvs_points(synth, rng), std::invalid_argument);
}

}  // namespace
}  // namespace basched::graph
