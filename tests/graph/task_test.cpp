#include "basched/graph/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace basched::graph {
namespace {

TEST(DesignPoint, EnergyIsCurrentTimesDuration) {
  const DesignPoint p{100.0, 2.5, 0.0};
  EXPECT_DOUBLE_EQ(p.energy(), 250.0);
}

TEST(Task, SortsByDurationAscending) {
  const Task t("T1", {{100.0, 5.0}, {500.0, 1.0}, {200.0, 3.0}});
  EXPECT_DOUBLE_EQ(t.point(0).duration, 1.0);
  EXPECT_DOUBLE_EQ(t.point(1).duration, 3.0);
  EXPECT_DOUBLE_EQ(t.point(2).duration, 5.0);
}

TEST(Task, CanonicalOrderFastestIsHighestPower) {
  const Task t("T1", {{100.0, 5.0}, {500.0, 1.0}});
  EXPECT_DOUBLE_EQ(t.max_current(), 500.0);
  EXPECT_DOUBLE_EQ(t.min_current(), 100.0);
  EXPECT_DOUBLE_EQ(t.min_duration(), 1.0);
  EXPECT_DOUBLE_EQ(t.max_duration(), 5.0);
}

TEST(Task, RejectsNonMonotoneTradeoff) {
  // Slower *and* hungrier second point violates the canonical trade-off.
  EXPECT_THROW(Task("T", {{100.0, 1.0}, {200.0, 2.0}}), std::invalid_argument);
}

TEST(Task, AcceptsEqualCurrents) {
  EXPECT_NO_THROW(Task("T", {{100.0, 1.0}, {100.0, 2.0}}));
}

TEST(Task, SinglePointTask) {
  const Task t("T", {{50.0, 2.0}});
  EXPECT_EQ(t.num_points(), 1u);
  EXPECT_DOUBLE_EQ(t.average_energy(), 100.0);
}

TEST(Task, AverageEnergy) {
  const Task t("T", {{400.0, 1.0}, {100.0, 2.0}});  // energies 400, 200
  EXPECT_DOUBLE_EQ(t.average_energy(), 300.0);
}

TEST(Task, EmptyNameThrows) {
  EXPECT_THROW(Task("", {{1.0, 1.0}}), std::invalid_argument);
}

TEST(Task, WhitespaceNameThrows) {
  EXPECT_THROW(Task("a b", {{1.0, 1.0}}), std::invalid_argument);
}

TEST(Task, NoPointsThrows) { EXPECT_THROW(Task("T", {}), std::invalid_argument); }

TEST(Task, NonPositiveDurationThrows) {
  EXPECT_THROW(Task("T", {{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(Task("T", {{1.0, -2.0}}), std::invalid_argument);
}

TEST(Task, NegativeCurrentThrows) {
  EXPECT_THROW(Task("T", {{-1.0, 1.0}}), std::invalid_argument);
}

TEST(Task, ZeroCurrentAllowed) {
  EXPECT_NO_THROW(Task("T", {{0.0, 1.0}}));
}

TEST(Task, PointAccessBoundsChecked) {
  const Task t("T", {{1.0, 1.0}});
  EXPECT_THROW((void)t.point(1), std::out_of_range);
}

TEST(Task, PointsSpanMatchesCount) {
  const Task t("T", {{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_EQ(t.points().size(), 2u);
  EXPECT_EQ(t.num_points(), 2u);
}

}  // namespace
}  // namespace basched::graph
