#include "basched/graph/dvs_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "basched/graph/task.hpp"

namespace basched::graph {
namespace {

CmosParams nominal() {
  CmosParams p;
  p.v_max = 1.8;
  p.v_t = 0.4;
  p.alpha = 2.0;
  p.f_max = 600.0;
  p.c_eff = 1.0;
  p.v_battery = 3.7;
  return p;
}

TEST(DvsModel, FrequencyMaxAtVmax) {
  const auto p = nominal();
  EXPECT_NEAR(dvs_frequency(p, p.v_max), p.f_max, 1e-9);
}

TEST(DvsModel, FrequencyMonotoneInVoltage) {
  const auto p = nominal();
  double prev = 0.0;
  for (double v = 0.6; v <= 1.8; v += 0.1) {
    const double f = dvs_frequency(p, v);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(DvsModel, FrequencyValidation) {
  const auto p = nominal();
  EXPECT_THROW((void)dvs_frequency(p, 0.4), std::invalid_argument);   // v == v_t
  EXPECT_THROW((void)dvs_frequency(p, 0.2), std::invalid_argument);   // below threshold
  EXPECT_THROW((void)dvs_frequency(p, 2.0), std::invalid_argument);   // above v_max
  CmosParams bad = nominal();
  bad.alpha = 2.5;
  EXPECT_THROW((void)dvs_frequency(bad, 1.0), std::invalid_argument);
  bad = nominal();
  bad.v_t = 2.0;
  EXPECT_THROW((void)dvs_frequency(bad, 1.0), std::invalid_argument);
}

TEST(DvsModel, DesignPointScalesWithCycles) {
  const auto p = nominal();
  const auto small = dvs_design_point(p, 1.8, 600.0);
  const auto large = dvs_design_point(p, 1.8, 1200.0);
  EXPECT_NEAR(large.duration, 2.0 * small.duration, 1e-12);
  EXPECT_NEAR(large.current, small.current, 1e-12);  // current depends on V only
}

TEST(DvsModel, CubeLawRecoveredWhenThresholdNegligible) {
  // With v_t ≈ 0 and α = 2: f ∝ V, so I ∝ V³ and D ∝ 1/V — the paper's
  // "currents ∝ s³, durations ∝ 1/s" recipe.
  CmosParams p = nominal();
  p.v_t = 1e-9;
  p.i_leak = 0.0;
  p.i_overhead = 0.0;
  const auto hi = dvs_design_point(p, 1.8, 600.0);
  const auto lo = dvs_design_point(p, 0.9, 600.0);
  EXPECT_NEAR(hi.current / lo.current, 8.0, 1e-6);     // (2)³
  EXPECT_NEAR(lo.duration / hi.duration, 2.0, 1e-6);   // 1/(1/2)
}

TEST(DvsModel, OverheadAddsConstantCurrent) {
  CmosParams p = nominal();
  const auto base = dvs_design_point(p, 1.2, 600.0);
  p.i_overhead = 150.0;
  const auto loaded = dvs_design_point(p, 1.2, 600.0);
  EXPECT_NEAR(loaded.current - base.current, 150.0, 1e-9);
  EXPECT_NEAR(loaded.duration, base.duration, 1e-12);
}

TEST(DvsModel, LeakageScalesWithVoltage) {
  CmosParams p = nominal();
  p.i_leak = 37.0;
  const auto pt = dvs_design_point(p, 1.0, 600.0);
  CmosParams q = nominal();
  const auto base = dvs_design_point(q, 1.0, 600.0);
  EXPECT_NEAR(pt.current - base.current, 1.0 * 37.0 / 3.7, 1e-9);
}

TEST(DvsModel, DesignPointsSortedFastestFirst) {
  const auto p = nominal();
  const std::vector<double> volts{0.9, 1.8, 1.2};  // deliberately unsorted
  const auto pts = dvs_design_points(p, volts, 600.0);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].voltage, 1.8);
  EXPECT_DOUBLE_EQ(pts[2].voltage, 0.9);
  for (std::size_t j = 1; j < pts.size(); ++j) {
    EXPECT_LT(pts[j - 1].duration, pts[j].duration);
    EXPECT_GT(pts[j - 1].current, pts[j].current);
  }
}

TEST(DvsModel, DesignPointsAcceptedByTask) {
  const auto p = nominal();
  const std::vector<double> volts{1.8, 1.4, 1.0, 0.7};
  EXPECT_NO_THROW(Task("X", dvs_design_points(p, volts, 900.0)));
}

TEST(DvsModel, DuplicateVoltageRejected) {
  const auto p = nominal();
  const std::vector<double> volts{1.2, 1.2};
  EXPECT_THROW((void)dvs_design_points(p, volts, 600.0), std::invalid_argument);
  EXPECT_THROW((void)dvs_design_points(p, std::vector<double>{}, 600.0), std::invalid_argument);
}

TEST(DvsModel, CyclesValidation) {
  const auto p = nominal();
  EXPECT_THROW((void)dvs_design_point(p, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)dvs_design_point(p, 1.0, -5.0), std::invalid_argument);
}

TEST(DvsModel, VelocitySaturationSlowsFrequencyGrowth) {
  // α < 2 (velocity-saturated) yields higher relative frequency at low V
  // than the classic α = 2 model.
  CmosParams classic = nominal();
  CmosParams saturated = nominal();
  saturated.alpha = 1.3;
  const double f_lo_classic = dvs_frequency(classic, 0.8) / dvs_frequency(classic, 1.8);
  const double f_lo_sat = dvs_frequency(saturated, 0.8) / dvs_frequency(saturated, 1.8);
  EXPECT_GT(f_lo_sat, f_lo_classic);
}

}  // namespace
}  // namespace basched::graph
