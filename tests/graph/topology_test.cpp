#include "basched/graph/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "basched/graph/generators.hpp"
#include "basched/util/rng.hpp"

namespace basched::graph {
namespace {

Task t(const std::string& name) { return Task(name, {{100.0, 1.0}, {25.0, 2.0}}); }

TaskGraph diamond() {
  // A -> {B, C} -> D
  TaskGraph g;
  g.add_task(t("A"));
  g.add_task(t("B"));
  g.add_task(t("C"));
  g.add_task(t("D"));
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  return g;
}

TEST(Topology, TopologicalOrderOfDiamond) {
  const auto order = topological_order(diamond());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 3u);
  EXPECT_TRUE(is_topological_order(diamond(), order));
}

TEST(Topology, DeterministicTieBreaking) {
  const auto a = topological_order(diamond());
  const auto b = topological_order(diamond());
  EXPECT_EQ(a, b);
  // Smallest-id tie-break puts B before C.
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(a[2], 2u);
}

TEST(Topology, CyclicGraphDetected) {
  TaskGraph g;
  g.add_task(t("A"));
  g.add_task(t("B"));
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_FALSE(topological_order_if_acyclic(g).has_value());
  EXPECT_THROW((void)topological_order(g), std::invalid_argument);
}

TEST(Topology, IsTopologicalOrderRejectsBadInputs) {
  const auto g = diamond();
  EXPECT_FALSE(is_topological_order(g, {0, 1, 2}));           // wrong size
  EXPECT_FALSE(is_topological_order(g, {0, 1, 1, 3}));        // repeated id
  EXPECT_FALSE(is_topological_order(g, {0, 1, 2, 99}));       // out of range
  EXPECT_FALSE(is_topological_order(g, {3, 1, 2, 0}));        // violates edges
  EXPECT_TRUE(is_topological_order(g, {0, 2, 1, 3}));
}

TEST(Topology, AsapLevels) {
  const auto levels = asap_levels(diamond());
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[3], 2u);
}

TEST(Topology, DescendantsInclusive) {
  const auto g = diamond();
  EXPECT_EQ(descendants_inclusive(g, 0), (std::vector<TaskId>{0, 1, 2, 3}));
  EXPECT_EQ(descendants_inclusive(g, 1), (std::vector<TaskId>{1, 3}));
  EXPECT_EQ(descendants_inclusive(g, 3), (std::vector<TaskId>{3}));
}

TEST(Topology, AncestorsInclusive) {
  const auto g = diamond();
  EXPECT_EQ(ancestors_inclusive(g, 3), (std::vector<TaskId>{0, 1, 2, 3}));
  EXPECT_EQ(ancestors_inclusive(g, 0), (std::vector<TaskId>{0}));
}

TEST(Topology, DescendantsOutOfRangeThrows) {
  EXPECT_THROW((void)descendants_inclusive(diamond(), 99), std::out_of_range);
}

TEST(Topology, CriticalPathDuration) {
  // Diamond with unit durations at column 0: A + B/C + D = 3.
  EXPECT_DOUBLE_EQ(critical_path_duration(diamond(), 0), 3.0);
  EXPECT_DOUBLE_EQ(critical_path_duration(diamond(), 1), 6.0);
}

TEST(Topology, AllTopologicalOrdersOfDiamond) {
  const auto orders = all_topological_orders(diamond(), 100);
  ASSERT_TRUE(orders.has_value());
  EXPECT_EQ(orders->size(), 2u);  // ABCD and ACBD
  for (const auto& o : *orders) EXPECT_TRUE(is_topological_order(diamond(), o));
}

TEST(Topology, AllTopologicalOrdersRespectsLimit) {
  // 6 independent tasks have 720 orders; a limit of 10 must abort.
  util::Rng rng(1);
  DesignPointSynthesis synth;
  const auto g = make_independent(6, synth, rng);
  EXPECT_FALSE(all_topological_orders(g, 10).has_value());
  const auto all = all_topological_orders(g, 720);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->size(), 720u);
}

TEST(KahnFrontier, TracksReadySetUnderScheduleUnschedule) {
  const auto g = diamond();
  KahnFrontier frontier(g);
  EXPECT_EQ(frontier.num_scheduled(), 0u);
  EXPECT_TRUE(frontier.is_ready(0));
  EXPECT_FALSE(frontier.is_ready(1));
  EXPECT_FALSE(frontier.is_ready(3));

  frontier.schedule(0);
  EXPECT_EQ(frontier.num_scheduled(), 1u);
  EXPECT_FALSE(frontier.is_ready(0));  // scheduled, no longer ready
  EXPECT_TRUE(frontier.is_ready(1));
  EXPECT_TRUE(frontier.is_ready(2));
  EXPECT_FALSE(frontier.is_ready(3));

  frontier.schedule(2);
  EXPECT_FALSE(frontier.is_ready(3));  // still waiting on B
  frontier.schedule(1);
  EXPECT_TRUE(frontier.is_ready(3));

  // LIFO unwind restores each earlier state exactly.
  frontier.unschedule(1);
  EXPECT_FALSE(frontier.is_ready(3));
  EXPECT_TRUE(frontier.is_ready(1));
  frontier.unschedule(2);
  frontier.unschedule(0);
  EXPECT_EQ(frontier.num_scheduled(), 0u);
  EXPECT_TRUE(frontier.is_ready(0));
  EXPECT_FALSE(frontier.is_ready(1));
}

TEST(KahnFrontier, ForEachReadyVisitsAscendingIds) {
  const auto g = diamond();
  KahnFrontier frontier(g);
  frontier.schedule(0);
  std::vector<TaskId> ready;
  frontier.for_each_ready([&](TaskId v) { ready.push_back(v); });
  EXPECT_EQ(ready, (std::vector<TaskId>{1, 2}));
}

TEST(KahnFrontier, ResetRestoresSources) {
  const auto g = diamond();
  KahnFrontier frontier(g);
  frontier.schedule(0);
  frontier.schedule(1);
  frontier.reset();
  EXPECT_EQ(frontier.num_scheduled(), 0u);
  EXPECT_TRUE(frontier.is_ready(0));
  EXPECT_FALSE(frontier.is_ready(1));
}

TEST(Topology, SourcesAndSinks) {
  const auto g = diamond();
  EXPECT_EQ(num_sources(g), 1u);
  EXPECT_EQ(num_sinks(g), 1u);
  util::Rng rng(2);
  DesignPointSynthesis synth;
  const auto ind = make_independent(4, synth, rng);
  EXPECT_EQ(num_sources(ind), 4u);
  EXPECT_EQ(num_sinks(ind), 4u);
}

class TopologyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopologyPropertyTest, GeneratedGraphOrdersAreValid) {
  util::Rng rng(GetParam());
  DesignPointSynthesis synth;
  const auto g = make_layered_random(4, 4, 0.3, synth, rng);
  ASSERT_TRUE(g.is_acyclic());
  const auto order = topological_order(g);
  EXPECT_TRUE(is_topological_order(g, order));
  // Levels must be consistent with every edge.
  const auto levels = asap_levels(g);
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    for (TaskId w : g.successors(v)) EXPECT_LT(levels[v], levels[w]);
}

TEST_P(TopologyPropertyTest, DescendantClosureContainsAllSuccessors) {
  util::Rng rng(GetParam() ^ 0xF00DULL);
  DesignPointSynthesis synth;
  const auto g = make_series_parallel(10, synth, rng);
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const auto desc = descendants_inclusive(g, v);
    EXPECT_TRUE(std::find(desc.begin(), desc.end(), v) != desc.end());
    for (TaskId w : g.successors(v))
      EXPECT_TRUE(std::find(desc.begin(), desc.end(), w) != desc.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyPropertyTest, ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace basched::graph
