#include "basched/graph/io.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "basched/graph/paper_graphs.hpp"

namespace basched::graph {
namespace {

TEST(Io, RoundTripG3) {
  const auto g = make_g3();
  const auto parsed = parse(serialize(g));
  ASSERT_EQ(parsed.num_tasks(), g.num_tasks());
  ASSERT_EQ(parsed.num_design_points(), g.num_design_points());
  EXPECT_EQ(parsed.num_edges(), g.num_edges());
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(parsed.task(v).name(), g.task(v).name());
    for (std::size_t j = 0; j < g.num_design_points(); ++j) {
      EXPECT_DOUBLE_EQ(parsed.task(v).point(j).current, g.task(v).point(j).current);
      EXPECT_DOUBLE_EQ(parsed.task(v).point(j).duration, g.task(v).point(j).duration);
    }
    for (TaskId w = 0; w < g.num_tasks(); ++w)
      EXPECT_EQ(parsed.has_edge(v, w), g.has_edge(v, w));
  }
}

TEST(Io, ParseMinimalGraph) {
  const auto g = parse(
      "taskgraph 2\n"
      "task A 100 1.5 25 3.0\n"
      "task B 200 2.0 50 4.0\n"
      "edge A B\n");
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_DOUBLE_EQ(g.task(0).point(1).duration, 3.0);
}

TEST(Io, CommentsAndBlankLines) {
  const auto g = parse(
      "# a comment\n"
      "taskgraph 1\n"
      "\n"
      "task A 5 1  # trailing comment\n");
  EXPECT_EQ(g.num_tasks(), 1u);
}

TEST(Io, MissingHeaderThrows) {
  EXPECT_THROW((void)parse("task A 1 1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse(""), std::invalid_argument);
}

TEST(Io, DuplicateHeaderThrows) {
  EXPECT_THROW((void)parse("taskgraph 1\ntaskgraph 1\n"), std::invalid_argument);
}

TEST(Io, WrongPairCountThrows) {
  EXPECT_THROW((void)parse("taskgraph 2\ntask A 1 1\n"), std::invalid_argument);
}

TEST(Io, MalformedPairThrows) {
  EXPECT_THROW((void)parse("taskgraph 1\ntask A 1 x\n"), std::invalid_argument);
}

TEST(Io, UnknownTaskInEdgeThrows) {
  EXPECT_THROW((void)parse("taskgraph 1\ntask A 1 1\nedge A B\n"), std::invalid_argument);
}

TEST(Io, UnknownDirectiveThrows) {
  EXPECT_THROW((void)parse("taskgraph 1\nfrobnicate\n"), std::invalid_argument);
}

TEST(Io, DuplicateEdgeThrows) {
  EXPECT_THROW((void)parse("taskgraph 1\ntask A 1 1\ntask B 1 1\nedge A B\nedge A B\n"),
               std::invalid_argument);
}

TEST(Io, ErrorsCarryLineNumbers) {
  try {
    (void)parse("taskgraph 1\ntask A 1 1\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Io, DotExportMentionsAllTasksAndEdges) {
  const auto g = make_g2();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    EXPECT_NE(dot.find("\"" + g.task(v).name() + "\""), std::string::npos);
  EXPECT_NE(dot.find("\"N2\" -> \"N3\""), std::string::npos);
}

}  // namespace
}  // namespace basched::graph
