/// \file robotic_arm.cpp
/// \brief The paper's case study (§5): a robotic-arm controller (task graph
/// G2, Mooney & De Micheli via Rakhmatov [1]) on a voltage-scalable
/// processor, scheduled for three different deadlines and compared against
/// the dynamic-programming baseline of [1] — the left half of Table 4.
#include <cstdio>

#include "basched/analysis/report.hpp"
#include "basched/graph/io.hpp"
#include "basched/graph/paper_graphs.hpp"

int main() {
  using namespace basched;

  const graph::TaskGraph g2 = graph::make_g2();
  std::printf("Robotic arm controller (G2): %zu tasks, %zu design-points each\n",
              g2.num_tasks(), g2.num_design_points());
  std::printf("\nTask graph (Graphviz DOT):\n%s\n", graph::to_dot(g2).c_str());

  const std::vector<double> deadlines(graph::kG2Deadlines.begin(), graph::kG2Deadlines.end());
  const auto rows = analysis::run_comparisons(g2, "G2", deadlines, graph::kPaperBeta);

  std::printf("Battery capacity used, ours vs. the DP baseline of [1] (Table 4, left):\n%s\n",
              analysis::format_table4(rows).c_str());

  for (const auto& row : rows) {
    if (row.percent_diff) {
      std::printf(
          "deadline %3.0f min: ours uses %.0f mA*min, [1] uses %.0f (%.1f%% vs baseline)\n",
          row.deadline, row.ours_sigma, row.baseline_sigma, *row.percent_diff);
    }
  }
  std::printf("\nPaper's corresponding cells: 30913/35739 (d=55), 13751/13885 (d=75), "
              "7961/8517 (d=95).\n");
  return 0;
}
