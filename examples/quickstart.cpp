/// \file quickstart.cpp
/// \brief Minimal tour of the basched public API: build a task graph, run the
/// battery-aware scheduler, inspect the result.
///
/// Scenario: a tiny camera pipeline (capture → compress → transmit) on a DVS
/// processor with three voltage/frequency operating points per task. We ask
/// for the whole pipeline to finish within 12 minutes while drawing as
/// little battery charge as possible from a lithium cell whose nonlinearity
/// is described by the Rakhmatov–Vrudhula model.
#include <cstdio>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/task_graph.hpp"

int main() {
  using namespace basched;

  // 1. Describe the application: tasks with (current mA, duration min)
  //    design-points, fastest first, and their dependencies.
  graph::TaskGraph app;
  const auto capture = app.add_task(graph::Task(
      "capture", {{650.0, 1.5}, {320.0, 2.5}, {110.0, 4.5}}));
  const auto compress = app.add_task(graph::Task(
      "compress", {{900.0, 2.0}, {440.0, 3.4}, {150.0, 6.0}}));
  const auto transmit = app.add_task(graph::Task(
      "transmit", {{500.0, 1.0}, {250.0, 1.7}, {85.0, 3.0}}));
  app.add_edge(capture, compress);
  app.add_edge(compress, transmit);

  // 2. Pick the battery model (β = 0.273 is the paper's value) and deadline.
  const battery::RakhmatovVrudhulaModel model(0.273);
  const double deadline = 12.0;  // minutes

  // 3. Run the iterative battery-aware scheduler.
  const core::IterativeResult result = core::schedule_battery_aware(app, deadline, model);
  if (!result.feasible) {
    std::printf("no feasible schedule: %s\n", result.error.c_str());
    return 1;
  }

  // 4. Inspect the schedule.
  std::printf("battery-aware schedule (deadline %.1f min):\n", deadline);
  for (graph::TaskId v : result.schedule.sequence) {
    const auto& task = app.task(v);
    const auto& pt = task.point(result.schedule.assignment[v]);
    std::printf("  %-9s design-point %zu: %6.1f mA for %4.1f min\n", task.name().c_str(),
                result.schedule.assignment[v] + 1, pt.current, pt.duration);
  }
  std::printf("makespan           : %7.2f min\n", result.duration);
  std::printf("plain energy       : %7.1f mA*min\n", result.energy);
  std::printf("battery charge used: %7.1f mA*min (sigma, RV model)\n", result.sigma);
  std::printf("iterations         : %zu\n", result.iterations.size());

  // 5. Contrast with the naive all-fastest schedule.
  const core::Schedule naive{result.schedule.sequence, core::uniform_assignment(app, 0)};
  const double naive_sigma = model.charge_lost_at_end(naive.to_profile(app));
  std::printf("all-fastest sigma  : %7.1f mA*min (%.1f%% more battery)\n", naive_sigma,
              100.0 * (naive_sigma - result.sigma) / result.sigma);
  return 0;
}
