/// \file mission_planner.cpp
/// \brief End-to-end mission planning on a finite battery: pick a schedule,
/// check it against the real capacity, rescue it with rest insertion if the
/// battery is too small, and estimate how many missions a charge sustains.
///
/// Scenario: a battery-powered field data-logger runs the G2 robotic-arm
/// control workload once per 90-minute duty cycle on a small 40 Ah-min pack.
#include <cstdio>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/core/rest_insertion.hpp"
#include "basched/graph/paper_graphs.hpp"
#include "basched/sim/mission.hpp"

int main() {
  using namespace basched;

  const auto g2 = graph::make_g2();
  const battery::RakhmatovVrudhulaModel model(graph::kPaperBeta);
  const double duty_cycle = 90.0;   // minutes per mission
  const double deadline = 75.0;     // the work must be done in the first 75
  const double alpha = 40000.0;     // pack capacity, mA*min

  // 1. Battery-aware schedule for one mission.
  const auto plan = core::schedule_battery_aware(g2, deadline, model);
  if (!plan.feasible) {
    std::printf("no feasible schedule: %s\n", plan.error.c_str());
    return 1;
  }
  std::printf("one mission: sigma %.0f mA*min, duration %.1f min (deadline %.0f)\n", plan.sigma,
              plan.duration, deadline);

  // 2. Does a single mission survive on this pack at all?
  if (core::survives_without_rest(g2, plan.schedule, model, alpha)) {
    std::printf("single mission survives the %.0f mA*min pack with no rest needed\n", alpha);
  } else {
    const auto rescue = core::insert_rest_for_survival(g2, plan.schedule, deadline, model, alpha);
    if (rescue) {
      std::printf("single mission needs %.2f min of inserted rest to survive\n",
                  rescue->total_rest());
    } else {
      std::printf("single mission cannot survive this pack even with rest — aborting\n");
      return 1;
    }
  }

  // 3. How many duty cycles does the pack sustain?
  sim::MissionSpec spec;
  spec.period = duty_cycle;
  spec.alpha = alpha;
  spec.max_frames = 100;
  const auto mission = sim::run_mission(g2, plan.schedule, spec, model);
  if (mission.battery_survived) {
    std::printf("pack sustains at least %d duty cycles (simulation horizon)\n",
                mission.frames_completed);
  } else {
    std::printf("pack sustains %d full duty cycles; dies at %.0f min into cycle %d\n",
                mission.frames_completed, mission.death_time, mission.frames_completed + 1);
  }

  // 4. Contrast with the naive all-fastest schedule.
  const core::Schedule naive{plan.schedule.sequence, core::uniform_assignment(g2, 0)};
  const auto naive_mission = sim::run_mission(g2, naive, spec, model);
  std::printf("all-fastest schedule sustains %d duty cycles on the same pack\n",
              naive_mission.frames_completed);
  return 0;
}
