/// \file dvs_platform.cpp
/// \brief A synthetic DVS-processor platform: generate a randomized layered
/// application with the paper's design-point recipe (D ∝ 1/s, I ∝ s³),
/// schedule it across a range of deadlines, and show the energy-vs-battery
/// trade-off that motivates battery-aware (rather than plain energy-aware)
/// scheduling.
#include <cstdio>
#include <vector>

#include "basched/baselines/rv_dp.hpp"
#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/generators.hpp"
#include "basched/util/table.hpp"

int main() {
  using namespace basched;

  constexpr std::uint64_t kSeed = 2005;  // DATE 2005
  util::Rng rng(kSeed);
  graph::DesignPointSynthesis synth;
  synth.num_points = 4;
  synth.max_speedup = 2.5;  // the G2 recipe's voltage span
  const graph::TaskGraph app = graph::make_layered_random(5, 3, 0.35, synth, rng);
  std::printf("Synthetic DVS application (seed %llu): %zu tasks, %zu edges, %zu operating "
              "points per task\n",
              static_cast<unsigned long long>(kSeed), app.num_tasks(), app.num_edges(),
              app.num_design_points());

  const battery::RakhmatovVrudhulaModel model(0.273);
  const double fastest = app.column_time(0);
  const double slowest = app.column_time(app.num_design_points() - 1);
  std::printf("all-fastest time %.1f min, all-slowest %.1f min\n\n", fastest, slowest);

  util::Table table({"deadline (min)", "ours sigma", "ours energy", "min-energy DP sigma",
                     "sigma saved %"});
  for (double frac : {0.35, 0.5, 0.65, 0.8, 0.95}) {
    const double d = fastest + frac * (slowest - fastest);
    const auto ours = core::schedule_battery_aware(app, d, model);
    const auto dp = baselines::schedule_rv_dp(app, d, model);
    if (!ours.feasible || !dp.feasible) continue;
    table.add_row({util::fmt_double(d, 1), util::fmt_double(ours.sigma, 0),
                   util::fmt_double(ours.energy, 0), util::fmt_double(dp.sigma, 0),
                   util::fmt_double(100.0 * (dp.sigma - ours.sigma) / dp.sigma, 1)});
  }
  std::printf("Battery use across deadlines (ours vs. plain min-energy selection [1]):\n%s\n",
              table.str().c_str());
  std::printf("Positive 'sigma saved' means the battery-aware schedule preserves charge that\n"
              "a purely energy-minimal design-point selection would waste.\n");
  return 0;
}
