/// \file fpga_platform.cpp
/// \brief FPGA-flavored scenario: design-points are alternative *bitstreams*
/// (hardware implementations with different area/parallelism), not voltage
/// settings, so their current/duration trade-offs are irregular — unlike the
/// smooth cubic DVS recipe. The scheduler only needs the (I, D) table, which
/// is exactly the paper's point about platform generality.
///
/// Scenario: a software-defined-radio pipeline on a battery-powered FPGA
/// board. Each stage has 3 hand-characterized bitstreams (wide/parallel =
/// fast but hungry, narrow/serial = slow but frugal).
#include <cstdio>

#include "basched/battery/rakhmatov_vrudhula.hpp"
#include "basched/core/iterative_scheduler.hpp"
#include "basched/graph/task_graph.hpp"

int main() {
  using namespace basched;

  graph::TaskGraph sdr;
  // (current mA, duration min) measured per bitstream; totals include the
  // board's memory and radio front-end as the paper assumes.
  const auto acquire = sdr.add_task(graph::Task(
      "acquire", {{540.0, 2.0}, {365.0, 3.1}, {180.0, 5.8}}));
  const auto chan_a = sdr.add_task(graph::Task(
      "channelize_a", {{720.0, 1.6}, {410.0, 2.9}, {205.0, 5.2}}));
  const auto chan_b = sdr.add_task(graph::Task(
      "channelize_b", {{700.0, 1.8}, {395.0, 3.2}, {190.0, 5.6}}));
  const auto demod = sdr.add_task(graph::Task(
      "demodulate", {{830.0, 2.4}, {470.0, 4.0}, {230.0, 7.0}}));
  const auto decode = sdr.add_task(graph::Task(
      "decode", {{610.0, 1.9}, {340.0, 3.3}, {160.0, 6.1}}));
  const auto sink = sdr.add_task(graph::Task(
      "record", {{300.0, 1.0}, {170.0, 1.8}, {90.0, 3.2}}));
  sdr.add_edge(acquire, chan_a);
  sdr.add_edge(acquire, chan_b);
  sdr.add_edge(chan_a, demod);
  sdr.add_edge(chan_b, demod);
  sdr.add_edge(demod, decode);
  sdr.add_edge(decode, sink);

  const battery::RakhmatovVrudhulaModel model(0.273);
  std::printf("SDR pipeline on FPGA: %zu stages, 3 bitstreams each\n", sdr.num_tasks());
  std::printf("all-fast %.1f min .. all-frugal %.1f min\n\n", sdr.column_time(0),
              sdr.column_time(2));

  for (double deadline : {14.0, 20.0, 28.0}) {
    const auto r = core::schedule_battery_aware(sdr, deadline, model);
    if (!r.feasible) {
      std::printf("deadline %5.1f min: infeasible (%s)\n", deadline, r.error.c_str());
      continue;
    }
    std::printf("deadline %5.1f min: sigma %7.1f mA*min, makespan %5.1f min, bitstreams:",
                deadline, r.sigma, r.duration);
    for (graph::TaskId v : r.schedule.sequence)
      std::printf(" %s=%zu", sdr.task(v).name().c_str(), r.schedule.assignment[v] + 1);
    std::printf("\n");
  }
  std::printf("\nTighter deadlines force wide bitstreams (column 1); looser ones let the\n"
              "scheduler fall back to frugal implementations and spend the slack late in\n"
              "the sequence where the battery recovers best.\n");
  return 0;
}
