/// \file fork_join.cpp
/// \brief Walk-through of the paper's illustrative example (§4.2): the
/// 15-task fork-join graph G3 with five design-points per task, deadline
/// 230 minutes, β = 0.273. Prints the per-iteration trace that corresponds
/// to the paper's Tables 2 and 3.
#include <cstdio>

#include "basched/analysis/report.hpp"
#include "basched/graph/paper_graphs.hpp"

int main() {
  using namespace basched;

  const graph::TaskGraph g3 = graph::make_g3();
  std::printf("Fork-join example graph (G3): %zu tasks, %zu design-points, deadline %.0f min, "
              "beta = %.3f\n\n",
              g3.num_tasks(), g3.num_design_points(), graph::kG3ExampleDeadline,
              graph::kPaperBeta);

  analysis::RunSpec spec;
  spec.name = "G3";
  spec.graph = &g3;
  spec.deadline = graph::kG3ExampleDeadline;
  spec.beta = graph::kPaperBeta;
  const auto result = analysis::run_ours(spec);
  if (!result.feasible) {
    std::printf("no feasible schedule: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("Task sequences and design-point assignments per iteration (cf. Table 2):\n%s\n",
              analysis::format_table2(g3, result).c_str());
  std::printf("Battery capacity per window per iteration (cf. Table 3):\n%s\n",
              analysis::format_table3(result, g3.num_design_points()).c_str());
  std::printf("Final: sigma = %.0f mA*min, makespan = %.1f min, %zu iterations\n", result.sigma,
              result.duration, result.iterations.size());
  std::printf("Paper's trajectory: 16353 -> 14725 -> 13737 -> 13737 (stop), 228-230 min.\n");
  return 0;
}
